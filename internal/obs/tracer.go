package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Stage identifies one timed segment of a request's life. The enum order is
// the pipeline order: route → queue wait → forward → commit → sync publish.
type Stage uint8

const (
	// StageRoute is shard routing: hash-ring lookup plus redirect checks.
	StageRoute Stage = iota
	// StageQueueWait is time spent queued in netserve admission control.
	StageQueueWait
	// StageForward is the model forward pass (embedding lookup + MLP).
	StageForward
	// StageCommit is the post-forward bookkeeping under the node mutex.
	StageCommit
	// StageSyncPublish is the publish stall of a fleet sync epoch: merged
	// adapter state being stamped and installed on the members.
	StageSyncPublish

	// NumStages is the number of traced stages.
	NumStages = int(StageSyncPublish) + 1
)

var stageNames = [NumStages]string{"route", "queue_wait", "forward", "commit", "sync_publish"}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Span is one completed, sampled stage timing. Start is nanoseconds since
// the tracer's epoch (process-local), Dur is the stage's wall-clock duration.
type Span struct {
	Stage   Stage
	StartNs int64
	DurNs   int64
}

// StageAgg accumulates sampled spans per stage: how many were recorded and
// their total duration.
type StageAgg struct {
	Count uint64
	SumNs int64
}

// spanSlot is one ring entry. Every field is individually atomic so a slot
// can be overwritten while a snapshot reads it without a data race; the seq
// field is a seqlock guard (0 = being written, otherwise 1+global index) that
// lets the reader detect and drop torn entries.
type spanSlot struct {
	seq   atomic.Uint64
	stage atomic.Uint32
	start atomic.Int64
	dur   atomic.Int64
}

// padCounter is a cache-line-padded atomic counter: the per-stage samplers
// are incremented on every request by every worker, so each stage gets its
// own line to avoid false sharing.
type padCounter struct {
	v atomic.Uint64
	_ [56]byte
}

// Tracer records sampled stage timings into a fixed-size lock-free ring.
// The hot path (StageStart/StageEnd) performs no allocation, takes no lock,
// and on unsampled requests is a single atomic increment. A nil *Tracer is
// valid: StageStart returns -1 and StageEnd no-ops.
type Tracer struct {
	epoch       time.Time
	sampleEvery uint64
	mask        uint64
	samplers    [NumStages]padCounter
	agg         [NumStages]struct {
		count atomic.Uint64
		sumNs atomic.Int64
	}
	cursor atomic.Uint64
	ring   []spanSlot
}

// DefaultSpanRing is the span ring capacity when Config.SpanRing is 0.
const DefaultSpanRing = 4096

// NewTracer returns a tracer sampling 1 in sampleEvery stage timings into a
// ring of the given capacity (rounded up to a power of two; 0 = default).
func NewTracer(sampleEvery, ringSize int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if ringSize <= 0 {
		ringSize = DefaultSpanRing
	}
	n := 1
	for n < ringSize {
		n <<= 1
	}
	return &Tracer{
		epoch:       time.Now(),
		sampleEvery: uint64(sampleEvery),
		mask:        uint64(n - 1),
		ring:        make([]spanSlot, n),
	}
}

// nowNs is nanoseconds since the tracer's epoch, read off the monotonic
// clock. time.Since on a monotonic base does not allocate.
func (t *Tracer) nowNs() int64 { return int64(time.Since(t.epoch)) }

// StageStart begins timing one stage occurrence. It returns -1 when this
// occurrence is not sampled (or the tracer is nil); otherwise the start
// timestamp to hand back to StageEnd. Each stage samples independently
// (1 in sampleEvery of *its own* occurrences), so no per-request token has
// to thread through the layers.
func (t *Tracer) StageStart(stage Stage) int64 {
	if t == nil {
		return -1
	}
	if t.samplers[stage].v.Add(1)%t.sampleEvery != 0 {
		return -1
	}
	return t.nowNs()
}

// StageEnd completes a timing begun by StageStart. Passing the -1 sentinel
// (unsampled) is the common case and returns immediately.
func (t *Tracer) StageEnd(stage Stage, startNs int64) {
	if t == nil || startNs < 0 {
		return
	}
	dur := t.nowNs() - startNs
	t.agg[stage].count.Add(1)
	t.agg[stage].sumNs.Add(dur)

	i := t.cursor.Add(1) - 1
	slot := &t.ring[i&t.mask]
	slot.seq.Store(0) // mark in-progress so a concurrent read drops the slot
	slot.stage.Store(uint32(stage))
	slot.start.Store(startNs)
	slot.dur.Store(dur)
	slot.seq.Store(i + 1)
}

// StageTotals returns the per-stage aggregates over all sampled spans so
// far. Totals are monotone; callers wanting a window take a delta.
func (t *Tracer) StageTotals() [NumStages]StageAgg {
	var out [NumStages]StageAgg
	if t == nil {
		return out
	}
	for i := range out {
		out[i] = StageAgg{Count: t.agg[i].count.Load(), SumNs: t.agg[i].sumNs.Load()}
	}
	return out
}

// SampleEvery returns the tracer's sampling period (0 on a nil tracer).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	return int(t.sampleEvery)
}

// Snapshot copies the currently valid spans out of the ring, oldest first.
// Entries being overwritten during the copy are detected by their seqlock
// guard and dropped; a span that survived a ring lap with an implausible
// payload (negative duration, unknown stage) is dropped too.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.ring))
	for i := range t.ring {
		slot := &t.ring[i]
		seq1 := slot.seq.Load()
		if seq1 == 0 {
			continue
		}
		sp := Span{
			Stage:   Stage(slot.stage.Load()),
			StartNs: slot.start.Load(),
			DurNs:   slot.dur.Load(),
		}
		if slot.seq.Load() != seq1 {
			continue // torn: overwritten mid-read
		}
		if int(sp.Stage) >= NumStages || sp.DurNs < 0 || sp.StartNs < 0 {
			continue
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].StartNs < out[b].StartNs })
	return out
}
