package obs

import (
	"encoding/json"
	"io"
	"math"
	"runtime"
)

// expvar-style JSON export. The stdlib expvar package publishes into one
// process-global registry and panics on duplicate names, which breaks as
// soon as two Gateways (or two tests) exist in one process — so this is a
// per-registry renderer with expvar's shape instead: a flat JSON object,
// plus the customary "memstats" block.

func writeVars(w io.Writer, snapshot []Metric) error {
	vars := make(map[string]any, len(snapshot)+1)
	for _, m := range snapshot {
		if m.Hist != nil {
			vars[m.Name] = map[string]any{
				"count":   m.Hist.Count,
				"sum":     jsonSafe(m.Hist.Sum),
				"buckets": m.Hist.Buckets,
				"min":     jsonSafe(m.Hist.Min),
				"max":     jsonSafe(m.Hist.Max),
			}
			continue
		}
		vars[m.Name] = jsonSafe(m.Value)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	vars["memstats"] = map[string]any{
		"Alloc":      ms.Alloc,
		"TotalAlloc": ms.TotalAlloc,
		"Sys":        ms.Sys,
		"HeapAlloc":  ms.HeapAlloc,
		"NumGC":      ms.NumGC,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(vars) // map keys marshal sorted: deterministic output
}

// jsonSafe keeps non-finite floats representable: encoding/json rejects NaN
// and ±Inf, so they are rendered as their string names instead.
func jsonSafe(v float64) any {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return v
}
