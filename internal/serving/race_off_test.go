//go:build !race

package serving

// raceEnabled gates allocation-count assertions; see race_on_test.go.
const raceEnabled = false
