//go:build race

package serving

// raceEnabled gates allocation-count assertions: under the race detector
// sync.Pool intentionally drops items (to expose reuse races) and
// instrumentation changes allocation behavior, so alloc tests are skipped.
const raceEnabled = true
