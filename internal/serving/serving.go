// Package serving implements the inference-side of a LiveUpdate node (paper
// Fig 7, red path): request serving with per-row memory-system accounting,
// the shared inference-data ring buffer that feeds the co-located trainer
// (10-minute retention, §IV-E), and P99 latency / SLA tracking.
package serving

import (
	"fmt"
	"sync"
	"sync/atomic"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/metrics"
	"liveupdate/internal/numasim"
	"liveupdate/internal/obs"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

// RingBuffer caches recent inference samples (features + labels) as the
// training dataset for the online update path. Old samples are overwritten
// once capacity is reached, matching the paper's 10-minute retention window.
type RingBuffer struct {
	buf   []trace.Sample
	next  int
	count int
	total uint64
}

// NewRingBuffer creates a buffer holding up to capacity samples.
func NewRingBuffer(capacity int) *RingBuffer {
	if capacity <= 0 {
		panic("serving: ring buffer capacity must be positive")
	}
	return &RingBuffer{buf: make([]trace.Sample, capacity)}
}

// Push appends a sample, overwriting the oldest when full.
func (r *RingBuffer) Push(s trace.Sample) {
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.total++
}

// Len returns the number of retained samples.
func (r *RingBuffer) Len() int { return r.count }

// Total returns the number of samples ever pushed.
func (r *RingBuffer) Total() uint64 { return r.total }

// Sample draws n samples uniformly (with replacement) from the retained
// window — the trainer's mini-batch source. It returns nil when empty.
func (r *RingBuffer) Sample(rng *tensor.RNG, n int) []trace.Sample {
	if r.count == 0 || n <= 0 {
		return nil
	}
	return r.SampleInto(rng, make([]trace.Sample, n))
}

// SampleInto is Sample through a caller-owned buffer, filling dst entirely
// and returning it — the allocation-free form the train tick reuses. It
// returns nil (drawing nothing from rng) when the buffer is empty, so its RNG
// consumption matches Sample's exactly.
func (r *RingBuffer) SampleInto(rng *tensor.RNG, dst []trace.Sample) []trace.Sample {
	if r.count == 0 || len(dst) == 0 {
		return nil
	}
	for i := range dst {
		dst[i] = r.buf[rng.Intn(r.count)]
	}
	return dst
}

// Recent returns up to n of the most recently pushed samples, newest last.
func (r *RingBuffer) Recent(n int) []trace.Sample {
	if n > r.count {
		n = r.count
	}
	out := make([]trace.Sample, 0, n)
	for i := n; i > 0; i-- {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// NodeConfig sets serving-path constants.
type NodeConfig struct {
	// GPUDenseTime is the dense-layer forward time per request on the
	// simulated GPU (paper: single-digit ms class).
	GPUDenseTime float64
	// SLA is the P99 target (paper: 10-20 ms). Latencies above it count as
	// violations.
	SLA float64
	// RingCapacity is the inference-data cache size in samples.
	RingCapacity int
	// LatencyWindow is the number of samples the P99 tracker retains.
	LatencyWindow int
}

// DefaultNodeConfig mirrors the paper's serving constants: ~4 ms dense time,
// 10 ms SLA target.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		GPUDenseTime:  0.004,
		SLA:           0.010,
		RingCapacity:  8192,
		LatencyWindow: 4096,
	}
}

// Validate reports configuration errors.
func (c NodeConfig) Validate() error {
	switch {
	case c.GPUDenseTime <= 0:
		return fmt.Errorf("serving: GPUDenseTime must be positive")
	case c.SLA <= 0:
		return fmt.Errorf("serving: SLA must be positive")
	case c.RingCapacity <= 0:
		return fmt.Errorf("serving: RingCapacity must be positive")
	case c.LatencyWindow <= 0:
		return fmt.Errorf("serving: LatencyWindow must be positive")
	}
	return nil
}

// Node is one inference server: it scores requests through the DLRM using
// an EmbeddingSource, charges every embedding-row access to the machine
// model, caches request data for the trainer, and tracks tail latency.
//
// The serving path is split in two (see core.System for the locking): Predict
// is read-only and lock-free — model weights and adapter state are read
// through their copy-on-write publishes, embedding access counters are
// atomic — while Commit mutates node state (ring, tracker, machine model,
// clock) and must be serialized by the owner.
type Node struct {
	Cfg     NodeConfig
	Model   *dlrm.Model
	Emb     dlrm.EmbeddingSource
	Machine *numasim.Machine
	Clock   *simnet.Clock
	Ring    *RingBuffer
	Lat     *metrics.LatencyTracker

	// Trace, when non-nil, records sampled wall-clock forward-stage spans.
	// A nil tracer no-ops, so the unobserved fast path pays one branch.
	Trace *obs.Tracer

	// served and violations are atomic so fleet-level code (merged stats,
	// progress reporting) can read them without taking the owning replica's
	// serve lock. All other Node state is guarded by the owner (core.System).
	served     atomic.Uint64
	violations atomic.Uint64
}

// NewNode assembles a serving node.
func NewNode(cfg NodeConfig, model *dlrm.Model, emb dlrm.EmbeddingSource,
	machine *numasim.Machine, clock *simnet.Clock) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Node{
		Cfg:     cfg,
		Model:   model,
		Emb:     emb,
		Machine: machine,
		Clock:   clock,
		Ring:    NewRingBuffer(cfg.RingCapacity),
		Lat:     metrics.NewLatencyTracker(cfg.LatencyWindow),
	}, nil
}

// MustNewNode panics on configuration errors.
func MustNewNode(cfg NodeConfig, model *dlrm.Model, emb dlrm.EmbeddingSource,
	machine *numasim.Machine, clock *simnet.Clock) *Node {
	n, err := NewNode(cfg, model, emb, machine, clock)
	if err != nil {
		panic(err)
	}
	return n
}

// Predict scores one request through the DLRM and the node's embedding
// source. It is the lock-free half of the serving fast path: it touches no
// node bookkeeping (ring, clocks, counters, machine model), runs through a
// pooled forward scratch with zero heap allocations, and is safe concurrently
// with Commit, Stats reads, and adapter publishes on the same node.
func (n *Node) Predict(s trace.Sample) float64 {
	t0 := n.Trace.StageStart(obs.StageForward)
	p := n.Model.Predict(n.Emb, s.Dense, s.Sparse)
	n.Trace.StageEnd(obs.StageForward, t0)
	return p
}

// PredictWith is Predict through a caller-owned scratch — the batched form:
// one scratch scores a whole run of requests without touching the pool.
func (n *Node) PredictWith(s trace.Sample, sc *dlrm.ForwardScratch) float64 {
	return n.Model.PredictWith(n.Emb, s.Dense, s.Sparse, sc)
}

// Commit performs one request's bookkeeping tail: embedding-row fetches are
// charged to the memory model (inference workload, cached path), the request
// is cached for the online trainer, tail latency and SLA violations are
// tracked, and the clock advances by the request latency (sequential-server
// model). It returns the request latency in seconds. Commit mutates node
// state and must be serialized by the owner (core.System's mutex); per-node
// Commit order is what the virtual-time determinism contract is defined over.
func (n *Node) Commit(s trace.Sample) (latency float64) {
	memTime := 0.0
	for t, ids := range s.Sparse {
		for _, id := range ids {
			memTime += n.Machine.Access(numasim.Inference, numasim.KindCached, int32(t), id)
		}
	}
	latency = memTime + n.Cfg.GPUDenseTime
	n.Ring.Push(s)
	n.Lat.Observe(latency)
	n.served.Add(1)
	if latency > n.Cfg.SLA {
		n.violations.Add(1)
	}
	n.Clock.Advance(latency)
	return latency
}

// Serve scores one request and commits its bookkeeping — Predict + Commit.
// It returns the predicted probability and the request latency in seconds.
// Like Commit, it must be serialized by the owner.
func (n *Node) Serve(s trace.Sample) (prob, latency float64) {
	prob = n.Predict(s)
	return prob, n.Commit(s)
}

// batchViews holds the slice-header views PredictBatch packs from a sample
// slice (no feature data is copied — the headers alias the samples). Pooled
// so building a batch view allocates nothing in steady state; views are
// package-global because batches from different nodes are interchangeable.
type batchViews struct {
	dense  [][]float64
	sparse [][][]int32
}

var viewPool = sync.Pool{New: func() any { return &batchViews{} }}

// probsPool pools ServeBatch's probability output buffers (pointer-to-slice
// so Put does not allocate).
var probsPool = sync.Pool{New: func() any { b := make([]float64, 0, 64); return &b }}

// PredictBatch scores samples in order, writing click probabilities into
// probs (len(probs) == len(samples)). It is the batched form of Predict —
// lock-free, zero-alloc in steady state — and routes through the model's
// GEMM path: one matrix multiply per MLP layer for the whole batch, with
// results bit-identical to per-sample Predict calls.
func (n *Node) PredictBatch(samples []trace.Sample, probs []float64) {
	if len(probs) != len(samples) {
		panic(fmt.Sprintf("serving: PredictBatch probs len %d != samples len %d", len(probs), len(samples)))
	}
	if len(samples) == 0 {
		return
	}
	v := viewPool.Get().(*batchViews)
	v.dense = v.dense[:0]
	v.sparse = v.sparse[:0]
	for i := range samples {
		v.dense = append(v.dense, samples[i].Dense)
		v.sparse = append(v.sparse, samples[i].Sparse)
	}
	t0 := n.Trace.StageStart(obs.StageForward) // one forward span per batch
	n.Model.PredictBatch(n.Emb, v.dense, v.sparse, probs, nil)
	n.Trace.StageEnd(obs.StageForward, t0)
	viewPool.Put(v)
}

// ServeBatch serves samples in order through the batched GEMM scoring path —
// buffers are acquired once for the whole batch while every request still
// gets its own memory-model charges, ring push, latency observation, and
// clock advance, so virtual-time statistics are identical to a loop over
// Serve. It returns the mean request latency.
func (n *Node) ServeBatch(samples []trace.Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	pb := probsPool.Get().(*[]float64)
	probs := *pb
	if cap(probs) < len(samples) {
		probs = make([]float64, len(samples))
	}
	probs = probs[:len(samples)]
	n.PredictBatch(samples, probs)
	total := 0.0
	for _, s := range samples {
		total += n.Commit(s)
	}
	*pb = probs[:0]
	probsPool.Put(pb)
	return total / float64(len(samples))
}

// P99 returns the current 99th-percentile latency over the tracker window.
func (n *Node) P99() float64 { return n.Lat.P99() }

// Served returns the number of requests processed.
func (n *Node) Served() uint64 { return n.served.Load() }

// Violations returns the number of requests that exceeded the SLA. Exposing
// the raw count (not just the rate) lets a fleet merge per-replica violation
// statistics exactly.
func (n *Node) Violations() uint64 { return n.violations.Load() }

// LatencySamples returns a copy of the tracker's retained latency window, the
// raw material for cross-replica quantile merging.
func (n *Node) LatencySamples() []float64 { return n.Lat.Samples() }

// ViolationRate returns the fraction of requests exceeding the SLA.
func (n *Node) ViolationRate() float64 {
	served := n.served.Load()
	if served == 0 {
		return 0
	}
	return float64(n.violations.Load()) / float64(served)
}

// ResetLatencyStats clears the latency tracker and violation counters
// (e.g. between experiment phases).
func (n *Node) ResetLatencyStats() {
	n.Lat.Reset()
	n.served.Store(0)
	n.violations.Store(0)
}
