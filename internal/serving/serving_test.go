package serving

import (
	"testing"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/numasim"
	"liveupdate/internal/simnet"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

func testProfile() trace.Profile {
	p := trace.Profiles()["criteo"]
	p.NumTables = 3
	p.TableSize = 200
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 2}
	return p
}

func newTestNode(t *testing.T) (*Node, *trace.Generator) {
	t.Helper()
	p := testProfile()
	rng := tensor.NewRNG(1)
	cfg := dlrm.Config{
		NumTables: p.NumTables, EmbeddingDim: p.EmbeddingDim, NumDense: p.NumDense,
		BottomHidden: []int{16}, TopHidden: []int{16},
	}
	model := dlrm.MustNewModel(cfg, rng)
	group := emt.NewGroup(p.NumTables, p.TableSize, p.EmbeddingDim, rng)
	clock := simnet.NewClock()
	machine := numasim.MustNewMachine(numasim.DefaultConfig(), clock)
	node := MustNewNode(DefaultNodeConfig(), model, &dlrm.BaseEmbeddings{Group: group}, machine, clock)
	return node, trace.MustNewGenerator(p, 2)
}

func TestRingBufferBasics(t *testing.T) {
	r := NewRingBuffer(3)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("fresh buffer must be empty")
	}
	for i := 0; i < 5; i++ {
		r.Push(trace.Sample{Time: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3 (capacity)", r.Len())
	}
	if r.Total() != 5 {
		t.Fatalf("total %d", r.Total())
	}
	recent := r.Recent(3)
	if len(recent) != 3 {
		t.Fatalf("recent %d", len(recent))
	}
	// Newest last: times 2,3,4.
	if recent[0].Time != 2 || recent[2].Time != 4 {
		t.Fatalf("recent order: %v %v %v", recent[0].Time, recent[1].Time, recent[2].Time)
	}
	// Recent(n) with n > len clamps.
	if len(r.Recent(99)) != 3 {
		t.Fatal("Recent must clamp")
	}
}

func TestRingBufferRecentWrapAroundOrdering(t *testing.T) {
	const cap = 5
	r := NewRingBuffer(cap)
	// Drive the write cursor across the wrap seam several times and verify
	// Recent returns chronologically ordered samples (newest last) at every
	// position of the cursor, for both full-window and partial reads.
	for i := 0; i < 3*cap+2; i++ {
		r.Push(trace.Sample{Time: float64(i)})
		newest := float64(i)
		for _, n := range []int{1, 2, cap, cap + 3} {
			got := r.Recent(n)
			want := n
			if want > r.Len() {
				want = r.Len()
			}
			if len(got) != want {
				t.Fatalf("push %d: Recent(%d) returned %d samples, want %d", i, n, len(got), want)
			}
			for k, s := range got {
				expect := newest - float64(want-1-k)
				if s.Time != expect {
					t.Fatalf("push %d: Recent(%d)[%d] = %v, want %v (wrap-around order broken)",
						i, n, k, s.Time, expect)
				}
			}
		}
	}
	if got := r.Recent(0); len(got) != 0 {
		t.Fatalf("Recent(0) must be empty, got %d", len(got))
	}
}

func TestRingBufferSample(t *testing.T) {
	r := NewRingBuffer(10)
	rng := tensor.NewRNG(3)
	if r.Sample(rng, 5) != nil {
		t.Fatal("sampling empty buffer must return nil")
	}
	for i := 0; i < 4; i++ {
		r.Push(trace.Sample{Time: float64(i)})
	}
	batch := r.Sample(rng, 20)
	if len(batch) != 20 {
		t.Fatalf("batch %d", len(batch))
	}
	for _, s := range batch {
		if s.Time < 0 || s.Time > 3 {
			t.Fatalf("sampled ghost element %v", s.Time)
		}
	}
	if r.Sample(rng, 0) != nil {
		t.Fatal("n<=0 must return nil")
	}
}

func TestNodeConfigValidate(t *testing.T) {
	if err := DefaultNodeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultNodeConfig()
	bad.GPUDenseTime = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero GPU time must fail")
	}
	bad = DefaultNodeConfig()
	bad.SLA = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative SLA must fail")
	}
	if _, err := NewNode(NodeConfig{}, nil, nil, nil, nil); err == nil {
		t.Fatal("NewNode must reject invalid config")
	}
}

func TestServeReturnsLatencyAndAdvancesClock(t *testing.T) {
	node, gen := newTestNode(t)
	before := node.Clock.Now()
	s := gen.Next()
	prob, lat := node.Serve(s)
	if prob <= 0 || prob >= 1 {
		t.Fatalf("prob %v", prob)
	}
	if lat < node.Cfg.GPUDenseTime {
		t.Fatalf("latency %v below GPU floor", lat)
	}
	if node.Clock.Now() <= before {
		t.Fatal("serve must advance the clock")
	}
	if node.Served() != 1 {
		t.Fatalf("served %d", node.Served())
	}
	if node.Ring.Len() != 1 {
		t.Fatal("request must be cached in the ring buffer")
	}
}

func TestServeWarmLatencyDropsAndP99(t *testing.T) {
	node, gen := newTestNode(t)
	// Serve the same sample repeatedly: after the first, rows are cached.
	s := gen.Next()
	_, cold := node.Serve(s)
	var warm float64
	for i := 0; i < 50; i++ {
		_, warm = node.Serve(s)
	}
	if warm >= cold {
		t.Fatalf("warm latency %v should be below cold %v", warm, cold)
	}
	if node.P99() <= 0 {
		t.Fatal("P99 must be positive after serving")
	}
}

func TestViolationTracking(t *testing.T) {
	node, gen := newTestNode(t)
	node.Cfg.SLA = 1e-9 // everything violates
	for i := 0; i < 10; i++ {
		node.Serve(gen.Next())
	}
	if node.ViolationRate() != 1 {
		t.Fatalf("violation rate %v, want 1", node.ViolationRate())
	}
	node.ResetLatencyStats()
	if node.ViolationRate() != 0 || node.Served() != 0 || node.P99() != 0 {
		t.Fatal("ResetLatencyStats failed")
	}
}

func TestServeBatch(t *testing.T) {
	node, gen := newTestNode(t)
	mean := node.ServeBatch(gen.Batch(20, 1))
	if mean <= 0 {
		t.Fatalf("mean latency %v", mean)
	}
	if node.Served() != 20 {
		t.Fatalf("served %d", node.Served())
	}
	if node.ServeBatch(nil) != 0 {
		t.Fatal("empty batch mean must be 0")
	}
}

func TestHotRowsServedFromCache(t *testing.T) {
	node, gen := newTestNode(t)
	// Zipf skew means the hot set gets cached quickly: after a warmup the
	// inference hit ratio should be substantial (paper Fig 12 → Fig 11 link).
	for i := 0; i < 300; i++ {
		node.Serve(gen.Next())
	}
	node.Machine.ResetStats()
	for i := 0; i < 300; i++ {
		node.Serve(gen.Next())
	}
	if hr := node.Machine.HitRatio(numasim.Inference); hr < 0.3 {
		t.Fatalf("steady-state hit ratio %v too low for Zipf traffic", hr)
	}
}

// --- Serving fast path ---

// TestServeEqualsPredictPlusCommit: the split serving path is exactly the
// composed one — same probability, same latency, same bookkeeping — so the
// lock-split System can call the halves separately without changing any
// virtual-time statistic.
func TestServeEqualsPredictPlusCommit(t *testing.T) {
	a, genA := newTestNode(t)
	b, genB := newTestNode(t)
	for i := 0; i < 300; i++ {
		sa, sb := genA.Next(), genB.Next()
		probA, latA := a.Serve(sa)
		probB := b.Predict(sb)
		latB := b.Commit(sb)
		if probA != probB || latA != latB {
			t.Fatalf("req %d: Serve (%v, %v) != Predict+Commit (%v, %v)", i, probA, latA, probB, latB)
		}
	}
	if a.Served() != b.Served() || a.Violations() != b.Violations() ||
		a.Clock.Now() != b.Clock.Now() || a.P99() != b.P99() ||
		a.Ring.Total() != b.Ring.Total() {
		t.Fatalf("bookkeeping diverged: served %d/%d clock %v/%v",
			a.Served(), b.Served(), a.Clock.Now(), b.Clock.Now())
	}
}

// TestServeBatchMatchesServeLoop: the amortized batch path must produce
// bit-identical virtual-time state to a plain loop over Serve.
func TestServeBatchMatchesServeLoop(t *testing.T) {
	a, genA := newTestNode(t)
	b, genB := newTestNode(t)
	batch := make([]trace.Sample, 64)
	loopTotal := 0.0
	for i := range batch {
		batch[i] = genA.Next()
		genB.Next() // keep generators aligned (samples are identical streams)
	}
	for _, s := range batch {
		_, l := a.Serve(s)
		loopTotal += l
	}
	mean := b.ServeBatch(batch)
	if want := loopTotal / float64(len(batch)); mean != want {
		t.Fatalf("batch mean latency %v, want %v", mean, want)
	}
	if a.Served() != b.Served() || a.Clock.Now() != b.Clock.Now() ||
		a.Violations() != b.Violations() || a.P99() != b.P99() {
		t.Fatalf("batch bookkeeping diverged: served %d/%d clock %v/%v",
			a.Served(), b.Served(), a.Clock.Now(), b.Clock.Now())
	}
	if b.ServeBatch(nil) != 0 {
		t.Fatal("empty batch must report 0 mean latency")
	}
}

// TestNodePredictZeroAlloc: the Predict half performs no heap allocation —
// the property the CI alloc gate enforces end to end.
func TestNodePredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	n, gen := newTestNode(t)
	s := gen.Next()
	if allocs := testing.AllocsPerRun(200, func() { n.Predict(s) }); allocs != 0 {
		t.Fatalf("Node.Predict allocates %v per run, want 0", allocs)
	}
}
