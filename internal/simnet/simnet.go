// Package simnet is the discrete-event substrate for all paper-scale cost
// experiments: a deterministic virtual clock, bandwidth/latency-modeled
// links with FIFO queueing, and the versioned sharded parameter server of
// the production architecture (paper Fig 2). "26 minutes to sync 20 TB over
// 100 GbE" is computed on the virtual timeline, never waited for.
package simnet

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Common bandwidth constants (bytes per second).
const (
	Gbps100 = 100e9 / 8 // 100 GbE link payload bandwidth
	Gbps10  = 10e9 / 8
	GBps    = 1e9
)

// Clock is a virtual timeline measured in seconds. Reads and writes are
// lock-free and safe for concurrent use: a replica advances its own clock
// while fleet-level code (routing, sync triggering, merged stats) reads it
// from other goroutines. The value is stored as IEEE-754 bits in an atomic
// word; Advance and AdvanceTo are CAS loops, so concurrent advances compose
// without lost updates.
type Clock struct {
	bits atomic.Uint64 // Float64bits of the current time
}

// NewClock returns a clock at t = 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return math.Float64frombits(c.bits.Load()) }

// Advance moves time forward by dt seconds. Negative dt panics: simulated
// time is monotone.
func (c *Clock) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("simnet: clock cannot go backwards (dt=%v)", dt))
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + dt)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// AdvanceTo moves time forward to t if t is in the future; no-op otherwise.
func (c *Clock) AdvanceTo(t float64) {
	for {
		old := c.bits.Load()
		if t <= math.Float64frombits(old) {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// Link models one serialized network path: a base propagation latency plus a
// bandwidth-limited pipe with FIFO queueing. Transfers issued while the link
// is busy wait for the queue to drain, which reproduces the paper's
// "bursty full-update traffic contends with serving" effect.
type Link struct {
	BandwidthBps float64 // bytes per second
	LatencySec   float64 // per-transfer base latency

	busyUntil   float64
	bytesMoved  int64
	busySeconds float64
	transfers   int
}

// NewLink builds a link with the given bandwidth (bytes/sec) and latency.
func NewLink(bandwidthBps, latencySec float64) *Link {
	if bandwidthBps <= 0 {
		panic("simnet: link bandwidth must be positive")
	}
	if latencySec < 0 {
		panic("simnet: link latency must be non-negative")
	}
	return &Link{BandwidthBps: bandwidthBps, LatencySec: latencySec}
}

// TransferDuration returns the unqueued wire time for size bytes.
func (l *Link) TransferDuration(size int64) float64 {
	if size < 0 {
		panic("simnet: negative transfer size")
	}
	return l.LatencySec + float64(size)/l.BandwidthBps
}

// Transfer enqueues a transfer of size bytes at the clock's current time and
// returns the absolute completion time. The link serializes transfers.
func (l *Link) Transfer(c *Clock, size int64) float64 {
	start := math.Max(c.Now(), l.busyUntil)
	wire := l.TransferDuration(size)
	done := start + wire
	l.busyUntil = done
	l.bytesMoved += size
	l.busySeconds += wire
	l.transfers++
	return done
}

// TransferAndWait performs Transfer and advances the clock to completion,
// returning the elapsed time from the call.
func (l *Link) TransferAndWait(c *Clock, size int64) float64 {
	before := c.Now()
	done := l.Transfer(c, size)
	c.AdvanceTo(done)
	return done - before
}

// BytesMoved returns the cumulative payload moved over the link.
func (l *Link) BytesMoved() int64 { return l.bytesMoved }

// Transfers returns the number of transfers issued.
func (l *Link) Transfers() int { return l.transfers }

// Utilization returns busy-seconds / elapsed virtual seconds (0 when no time
// has passed).
func (l *Link) Utilization(c *Clock) float64 {
	if c.Now() <= 0 {
		return 0
	}
	u := l.busySeconds / c.Now()
	if u > 1 {
		u = 1
	}
	return u
}

// BusyUntil returns the absolute time the link's queue drains.
func (l *Link) BusyUntil() float64 { return l.busyUntil }

// Network is a set of nodes fully connected by uniform point-to-point links,
// modelling the inference cluster's interconnect (paper §V-A: 100 Gbps).
type Network struct {
	N     int
	links map[[2]int]*Link

	bandwidthBps float64
	latencySec   float64
}

// NewNetwork builds an n-node network of identical links.
func NewNetwork(n int, bandwidthBps, latencySec float64) *Network {
	if n <= 0 {
		panic("simnet: network needs at least one node")
	}
	return &Network{
		N:            n,
		links:        make(map[[2]int]*Link),
		bandwidthBps: bandwidthBps,
		latencySec:   latencySec,
	}
}

// LinkBetween returns the (lazily created) link between nodes a and b.
// Links are symmetric: (a,b) and (b,a) share one queue.
func (n *Network) LinkBetween(a, b int) *Link {
	if a < 0 || a >= n.N || b < 0 || b >= n.N || a == b {
		panic(fmt.Sprintf("simnet: invalid link endpoints %d,%d", a, b))
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	l, ok := n.links[key]
	if !ok {
		l = NewLink(n.bandwidthBps, n.latencySec)
		n.links[key] = l
	}
	return l
}

// Send transfers size bytes from a to b starting at the clock time and
// returns the absolute completion time (the clock is not advanced: callers
// compose concurrent sends and then AdvanceTo the max).
func (n *Network) Send(c *Clock, a, b int, size int64) float64 {
	return n.LinkBetween(a, b).Transfer(c, size)
}

// TotalBytesMoved sums payload across all instantiated links.
func (n *Network) TotalBytesMoved() int64 {
	var total int64
	for _, l := range n.links {
		total += l.BytesMoved()
	}
	return total
}

// ShardKey identifies a parameter shard by table name.
type ShardKey struct {
	Table string
	Shard int
}

// ParameterServer is the central versioned KV store of the decoupled
// architecture (paper Fig 2): training pushes deltas, inference pulls them.
// It accounts bytes and versions; payload contents live with the caller.
type ParameterServer struct {
	Shards int

	versions    map[ShardKey]uint64
	storedBytes map[ShardKey]int64
	pushes      int
	pulls       int
}

// NewParameterServer builds a server with the given shard count.
func NewParameterServer(shards int) *ParameterServer {
	if shards <= 0 {
		panic("simnet: parameter server needs at least one shard")
	}
	return &ParameterServer{
		Shards:      shards,
		versions:    make(map[ShardKey]uint64),
		storedBytes: make(map[ShardKey]int64),
	}
}

// ShardFor maps a table/row to a shard by simple hashing.
func (ps *ParameterServer) ShardFor(table string, row int32) ShardKey {
	h := uint32(2166136261)
	for _, b := range []byte(table) {
		h = (h ^ uint32(b)) * 16777619
	}
	h ^= uint32(row)
	h *= 16777619
	return ShardKey{Table: table, Shard: int(h % uint32(ps.Shards))}
}

// Push records a delta of size bytes into the shard over link, returning the
// absolute completion time. The shard version increments.
func (ps *ParameterServer) Push(c *Clock, link *Link, key ShardKey, size int64) float64 {
	done := link.Transfer(c, size)
	ps.versions[key]++
	ps.storedBytes[key] += size
	ps.pushes++
	return done
}

// Pull fetches size bytes from the shard over link, returning the absolute
// completion time and the shard's version.
func (ps *ParameterServer) Pull(c *Clock, link *Link, key ShardKey, size int64) (float64, uint64) {
	done := link.Transfer(c, size)
	ps.pulls++
	return done, ps.versions[key]
}

// Version returns the current version of key.
func (ps *ParameterServer) Version(key ShardKey) uint64 { return ps.versions[key] }

// Stats returns cumulative push/pull counts.
func (ps *ParameterServer) Stats() (pushes, pulls int) { return ps.pushes, ps.pulls }

// StoredBytes returns bytes accumulated in the shard.
func (ps *ParameterServer) StoredBytes(key ShardKey) int64 { return ps.storedBytes[key] }
