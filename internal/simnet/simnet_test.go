package simnet

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestClockMonotone(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("clock must start at 0")
	}
	c.Advance(5)
	c.Advance(2.5)
	if c.Now() != 7.5 {
		t.Fatalf("now = %v", c.Now())
	}
	c.AdvanceTo(3) // past: no-op
	if c.Now() != 7.5 {
		t.Fatal("AdvanceTo must not go backwards")
	}
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("AdvanceTo failed: %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance must panic")
		}
	}()
	c.Advance(-1)
}

func TestLinkTransferDuration(t *testing.T) {
	l := NewLink(1000, 0.1) // 1000 B/s, 100 ms latency
	if d := l.TransferDuration(500); math.Abs(d-0.6) > 1e-12 {
		t.Fatalf("duration = %v, want 0.6", d)
	}
	if d := l.TransferDuration(0); d != 0.1 {
		t.Fatalf("latency-only duration = %v", d)
	}
}

func TestPaperScaleSyncArithmetic(t *testing.T) {
	// Paper §I: syncing 20 TB (10% of 200 TB) over 100 GbE takes >26 min.
	l := NewLink(Gbps100, 0.001)
	c := NewClock()
	elapsed := l.TransferAndWait(c, 20*(1<<40))
	minutes := elapsed / 60
	if minutes < 26 || minutes > 35 {
		t.Fatalf("20 TB over 100GbE = %.1f min, paper says >26 min", minutes)
	}
	// Paper §II-C: full 200 TB takes over four hours.
	c2 := NewClock()
	l2 := NewLink(Gbps100, 0.001)
	elapsed2 := l2.TransferAndWait(c2, 200*(1<<40))
	if elapsed2/3600 < 4 {
		t.Fatalf("200 TB over 100GbE = %.1f h, paper says >4 h", elapsed2/3600)
	}
	// Paper §II-C: QuickUpdate's 10 TB delta takes >14 min.
	c3 := NewClock()
	l3 := NewLink(Gbps100, 0.001)
	elapsed3 := l3.TransferAndWait(c3, 10*(1<<40))
	if elapsed3/60 < 14 {
		t.Fatalf("10 TB over 100GbE = %.1f min, paper says >14 min", elapsed3/60)
	}
}

func TestLinkFIFOQueueing(t *testing.T) {
	l := NewLink(100, 0) // 100 B/s
	c := NewClock()
	d1 := l.Transfer(c, 100) // done at 1s
	d2 := l.Transfer(c, 100) // queued: done at 2s
	if d1 != 1 || d2 != 2 {
		t.Fatalf("fifo times %v %v, want 1 2", d1, d2)
	}
	// After the queue drains, a transfer starts immediately.
	c.AdvanceTo(5)
	d3 := l.Transfer(c, 100)
	if d3 != 6 {
		t.Fatalf("post-drain transfer done at %v, want 6", d3)
	}
	if l.Transfers() != 3 || l.BytesMoved() != 300 {
		t.Fatalf("stats: %d transfers, %d bytes", l.Transfers(), l.BytesMoved())
	}
}

func TestLinkUtilization(t *testing.T) {
	l := NewLink(100, 0)
	c := NewClock()
	l.TransferAndWait(c, 100) // 1s busy of 1s elapsed
	if u := l.Utilization(c); math.Abs(u-1) > 1e-12 {
		t.Fatalf("utilization = %v, want 1", u)
	}
	c.Advance(1) // idle second
	if u := l.Utilization(c); math.Abs(u-0.5) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if NewLink(100, 0).Utilization(NewClock()) != 0 {
		t.Fatal("zero-time utilization must be 0")
	}
}

func TestLinkValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLink(0, 0) },
		func() { NewLink(-1, 0) },
		func() { NewLink(1, -1) },
		func() { NewLink(1, 0).TransferDuration(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNetworkSymmetricLinks(t *testing.T) {
	n := NewNetwork(4, 1000, 0)
	l1 := n.LinkBetween(1, 3)
	l2 := n.LinkBetween(3, 1)
	if l1 != l2 {
		t.Fatal("links must be symmetric (shared queue)")
	}
	c := NewClock()
	n.Send(c, 0, 1, 500)
	n.Send(c, 2, 3, 500)
	if n.TotalBytesMoved() != 1000 {
		t.Fatalf("total bytes %d", n.TotalBytesMoved())
	}
}

func TestNetworkInvalidEndpoints(t *testing.T) {
	n := NewNetwork(2, 1000, 0)
	for _, pair := range [][2]int{{0, 0}, {-1, 1}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("endpoints %v should panic", pair)
				}
			}()
			n.LinkBetween(pair[0], pair[1])
		}()
	}
}

func TestParameterServerVersioning(t *testing.T) {
	ps := NewParameterServer(8)
	l := NewLink(1e9, 0)
	c := NewClock()
	key := ps.ShardFor("table0", 42)
	if ps.Version(key) != 0 {
		t.Fatal("fresh shard version must be 0")
	}
	ps.Push(c, l, key, 1000)
	ps.Push(c, l, key, 2000)
	if ps.Version(key) != 2 {
		t.Fatalf("version %d, want 2", ps.Version(key))
	}
	if ps.StoredBytes(key) != 3000 {
		t.Fatalf("stored %d", ps.StoredBytes(key))
	}
	_, v := ps.Pull(c, l, key, 3000)
	if v != 2 {
		t.Fatalf("pull version %d", v)
	}
	pushes, pulls := ps.Stats()
	if pushes != 2 || pulls != 1 {
		t.Fatalf("stats %d/%d", pushes, pulls)
	}
}

func TestShardForDeterministicAndInRange(t *testing.T) {
	ps := NewParameterServer(16)
	k1 := ps.ShardFor("emb", 7)
	k2 := ps.ShardFor("emb", 7)
	if k1 != k2 {
		t.Fatal("sharding must be deterministic")
	}
	seen := make(map[int]bool)
	for row := int32(0); row < 1000; row++ {
		k := ps.ShardFor("emb", row)
		if k.Shard < 0 || k.Shard >= 16 {
			t.Fatalf("shard %d out of range", k.Shard)
		}
		seen[k.Shard] = true
	}
	if len(seen) < 8 {
		t.Fatalf("sharding too concentrated: only %d shards used", len(seen))
	}
}

// Property: completion times on one link are non-decreasing in issue order
// and total busy time equals the sum of wire durations.
func TestPropertyLinkSerialization(t *testing.T) {
	f := func(seed uint64) bool {
		sizes := []int64{100, 5000, 1, 999, 12345}
		l := NewLink(1e4, 0.01)
		c := NewClock()
		last := 0.0
		wantBusy := 0.0
		for i, s := range sizes {
			s = s + int64(seed%97) // vary sizes a little
			done := l.Transfer(c, s)
			if done < last {
				return false
			}
			last = done
			wantBusy += l.TransferDuration(s)
			if i == 2 {
				c.AdvanceTo(done) // let queue drain mid-sequence
			}
		}
		c.AdvanceTo(last)
		return math.Abs(l.Utilization(c)*c.Now()-wantBusy) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestClockConcurrent exercises the lock-free clock: concurrent Advance
// calls must never lose an update (the fleet reads replica clocks while
// their owners advance them), and AdvanceTo must stay monotone under racing
// maximum writes.
func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Advance(0.001)
			}
		}()
	}
	stop := make(chan struct{})
	go func() { // concurrent reader: time must never appear to move backwards
		last := 0.0
		for {
			select {
			case <-stop:
				return
			default:
				if now := c.Now(); now < last {
					t.Errorf("clock went backwards: %v after %v", now, last)
					return
				} else {
					last = now
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	want := float64(writers*per) * 0.001
	if got := c.Now(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("lost updates: clock at %v, want %v", got, want)
	}
	c.AdvanceTo(5)
	c.AdvanceTo(4) // no-op: already past
	if c.Now() < 5 {
		t.Fatalf("AdvanceTo regressed the clock to %v", c.Now())
	}
}
