package tensor

import (
	"math"
	"strings"
	"testing"
)

// mustPanic runs f and asserts it panics with a message containing every
// fragment in want.
func mustPanic(t *testing.T, name string, want []string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("%s: panic value %v is not a string", name, r)
		}
		for _, w := range want {
			if !strings.Contains(msg, w) {
				t.Errorf("%s: panic %q missing fragment %q", name, msg, w)
			}
		}
	}()
	f()
}

// TestKernelGuards is the satellite-2 table: every shape-mismatch path of the
// matvec/matmul kernels must panic with both operand shapes in the message,
// and dst aliasing x must be rejected.
func TestKernelGuards(t *testing.T) {
	a := RandomMatrix(NewRNG(1), 3, 4, 1)
	sq := RandomMatrix(NewRNG(2), 4, 4, 1)

	cases := []struct {
		name string
		want []string
		f    func()
	}{
		{"matvec x too short", []string{"matvec", "a=3x4", "x=3", "len(x) must equal a.Cols"},
			func() { MatVecInto(make([]float64, 3), a, make([]float64, 3)) }},
		{"matvec x too long", []string{"matvec", "a=3x4", "x=5", "len(x) must equal a.Cols"},
			func() { MatVecInto(make([]float64, 3), a, make([]float64, 5)) }},
		{"matvec dst wrong", []string{"matvec", "a=3x4", "dst=2", "len(dst) must equal a.Rows"},
			func() { MatVecInto(make([]float64, 2), a, make([]float64, 4)) }},
		{"matvec ref x wrong", []string{"matvec", "a=3x4", "x=5"},
			func() { MatVecRefInto(make([]float64, 3), a, make([]float64, 5)) }},
		{"matvec ref dst wrong", []string{"matvec", "a=3x4", "dst=4"},
			func() { MatVecRefInto(make([]float64, 4), a, make([]float64, 4)) }},
		{"matvec dst aliases x", []string{"matvec", "a=4x4", "dst must not alias x"},
			func() { buf := make([]float64, 4); MatVecInto(buf, sq, buf) }},
		{"matvec ref dst aliases x", []string{"matvec", "dst must not alias x"},
			func() { buf := make([]float64, 4); MatVecRefInto(buf, sq, buf) }},
		{"matvec via shim", []string{"matvec", "a=3x4", "x=2"},
			func() { MatVec(a, make([]float64, 2)) }},
		{"matmul inner mismatch", []string{"matmul", "a=3x4", "b=3x4", "inner dimensions"},
			func() { MatMulInto(NewMatrix(3, 4), a, a) }},
		{"matmul dst wrong", []string{"matmul", "a=3x4", "b=4x4", "dst=3x3", "must be 3x4"},
			func() { MatMulInto(NewMatrix(3, 3), a, sq) }},
		{"matmul dst aliases a", []string{"matmul", "dst must not alias a"},
			func() { MatMulInto(sq, sq, sq) }},
		{"matmul dst aliases b", []string{"matmul", "dst must not alias b"},
			func() { MatMulInto(sq, RandomMatrix(NewRNG(3), 4, 4, 1), sq) }},
		{"matmul via shim", []string{"matmul", "a=3x4", "b=3x4", "inner dimensions"},
			func() { MatMul(a, a) }},
		{"matmulT inner mismatch", []string{"matmulT", "a=3x4", "b=4x5", "inner dimensions"},
			func() { MatMulTransInto(NewMatrix(3, 4), a, RandomMatrix(NewRNG(4), 4, 5, 1)) }},
		{"matmulT dst wrong", []string{"matmulT", "a=3x4", "b=4x4", "dst=3x3", "must be 3x4"},
			func() { MatMulTransInto(NewMatrix(3, 3), a, sq) }},
		{"matmulT dst aliases a", []string{"matmulT", "dst must not alias a"},
			func() { MatMulTransInto(sq, sq, RandomMatrix(NewRNG(5), 4, 4, 1)) }},
		{"qmatvec x wrong", []string{"qmatvec", "a=3x4", "x=3", "len(x) must equal a.Cols"},
			func() { Quantize(a).MatVecInto(make([]float64, 3), make([]int8, 3), 1) }},
		{"qmatvec dst wrong", []string{"qmatvec", "a=3x4", "dst=2", "len(dst) must equal a.Rows"},
			func() { Quantize(a).MatVecInto(make([]float64, 2), make([]int8, 4), 1) }},
		{"quantize vector mismatch", []string{"quantize vector", "xq=3", "x=4"},
			func() { QuantizeVectorInto(make([]int8, 3), make([]float64, 4)) }},
	}
	for _, tc := range cases {
		mustPanic(t, tc.name, tc.want, tc.f)
	}
}

// kernelShapes are the satellite-3 odd shapes: degenerate vectors, prime
// dimensions straddling the unroll widths, and zero-size edges.
var kernelShapes = []struct{ rows, cols int }{
	{1, 7}, // 1xN
	{7, 1}, // Nx1
	{1, 1},
	{3, 5},   // both below unroll width
	{4, 4},   // exact block
	{5, 4},   // block + remainder row
	{13, 17}, // prime dims
	{31, 29},
	{64, 16}, // bench-profile bottom layer
	{0, 5},   // zero rows
	{5, 0},   // zero cols
	{0, 0},
}

// TestKernelBlockedMatchesReference: the blocked/unrolled kernels must match
// the naive scalar reference bit-for-bit on every shape and seed.
func TestKernelBlockedMatchesReference(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		rng := NewRNG(uint64(seed))
		for _, sh := range kernelShapes {
			a := RandomMatrix(rng, sh.rows, sh.cols, 1)
			x := make([]float64, sh.cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}

			want := make([]float64, sh.rows)
			got := make([]float64, sh.rows)
			MatVecRefInto(want, a, x)
			MatVecInto(got, a, x)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("matvec %dx%d seed %d row %d: blocked %v != ref %v",
						sh.rows, sh.cols, seed, i, got[i], want[i])
				}
			}

			// MatMulTransInto row i must equal MatVecInto(b, a.Row(i)) exactly:
			// batched inference must be bit-identical to per-sample matvecs.
			b := RandomMatrix(rng, 11, sh.cols, 1) // 11 rows: odd, exercises tile remainder
			batch := NewMatrix(sh.rows, 11)
			MatMulTransInto(batch, a, b)
			rowOut := make([]float64, 11)
			for i := 0; i < sh.rows; i++ {
				MatVecInto(rowOut, b, a.Row(i))
				for o, v := range rowOut {
					if batch.Row(i)[o] != v {
						t.Fatalf("matmulT %dx%d seed %d (%d,%d): batched %v != matvec %v",
							sh.rows, sh.cols, seed, i, o, batch.Row(i)[o], v)
					}
				}
			}

			// MatMulInto vs a scalar ikj reference with the same accumulation order.
			c := RandomMatrix(rng, sh.cols, 9, 1)
			ref := NewMatrix(sh.rows, 9)
			for i := 0; i < sh.rows; i++ {
				arow := a.Row(i)
				crow := ref.Row(i)
				for k, av := range arow {
					brow := c.Row(k)
					for j, bv := range brow {
						crow[j] += av * bv
					}
				}
			}
			mm := NewMatrix(sh.rows, 9)
			MatMulInto(mm, a, c)
			for i, v := range ref.Data {
				if mm.Data[i] != v {
					t.Fatalf("matmul %dx%d seed %d elem %d: unrolled %v != ref %v",
						sh.rows, sh.cols, seed, i, mm.Data[i], v)
				}
			}
		}
	}
}

// TestKernelQuantizedWithinTolerance: the int8 path must track the float
// reference within the combined row/activation quantization error bound.
func TestKernelQuantizedWithinTolerance(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		rng := NewRNG(uint64(100 + seed))
		for _, sh := range kernelShapes {
			a := RandomMatrix(rng, sh.rows, sh.cols, 1)
			x := make([]float64, sh.cols)
			xAbs := 0.0
			for i := range x {
				x[i] = rng.NormFloat64()
				if v := math.Abs(x[i]); v > xAbs {
					xAbs = v
				}
			}

			q := Quantize(a)
			xq := make([]int8, sh.cols)
			sx := QuantizeVectorInto(xq, x)

			want := make([]float64, sh.rows)
			got := make([]float64, sh.rows)
			MatVecRefInto(want, a, x)
			q.MatVecInto(got, xq, sx)

			for i := range want {
				// Each term carries at most scale/2 error from the weight and
				// sx/2 from the activation (plus their product); bound the row
				// error by n * (sw*xmax + sx*wmax + sw*sx) / 2-ish with slack.
				wmax := q.Scale[i] * 127
				bound := float64(sh.cols)*(q.Scale[i]*xAbs+sx*wmax+q.Scale[i]*sx) + 1e-12
				if diff := math.Abs(want[i] - got[i]); diff > bound {
					t.Fatalf("qmatvec %dx%d seed %d row %d: |%v - %v| = %v > bound %v",
						sh.rows, sh.cols, seed, i, got[i], want[i], diff, bound)
				}
			}
		}
	}
}

// TestQuantizeRoundTrip: quantization error per element is at most half a
// quantization step, and zero rows/vectors quantize exactly.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	m := RandomMatrix(rng, 9, 13, 1)
	for j := 0; j < m.Cols; j++ { // zero out one row entirely
		m.Row(4)[j] = 0
	}
	q := Quantize(m)
	if q.Scale[4] != 0 {
		t.Fatalf("zero row scale = %v, want 0", q.Scale[4])
	}
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			back := float64(q.Row(i)[j]) * q.Scale[i]
			if diff := math.Abs(v - back); diff > q.Scale[i]/2+1e-15 {
				t.Fatalf("round trip (%d,%d): |%v - %v| > scale/2 = %v", i, j, v, back, q.Scale[i]/2)
			}
		}
	}

	zero := make([]float64, 8)
	zq := make([]int8, 8)
	if s := QuantizeVectorInto(zq, zero); s != 0 {
		t.Fatalf("zero vector scale = %v, want 0", s)
	}
	for _, v := range zq {
		if v != 0 {
			t.Fatalf("zero vector quantized to %v", zq)
		}
	}
}

// TestTruncateF16 checks the mantissa-truncation semantics: exactly
// representable halves survive, low mantissa bits are dropped, and the
// matrix helper applies it elementwise without touching the input.
func TestTruncateF16(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 0.5, 2048, -3.25} {
		if got := TruncateF16(v); got != v {
			t.Fatalf("TruncateF16(%v) = %v, want unchanged", v, got)
		}
	}
	v := 1.0 + 1.0/2048 // needs 11 mantissa bits: must truncate back to 1
	if got := TruncateF16(v); got != 1.0 {
		t.Fatalf("TruncateF16(%v) = %v, want 1", v, got)
	}
	if got := TruncateF16(math.Pi); got == math.Pi || math.Abs(got-math.Pi) > 1e-3 {
		t.Fatalf("TruncateF16(pi) = %v", got)
	}

	rng := NewRNG(11)
	m := RandomMatrix(rng, 5, 5, 1)
	orig := append([]float64(nil), m.Data...)
	tm := TruncateF16Matrix(m)
	for i, v := range m.Data {
		if v != orig[i] {
			t.Fatal("TruncateF16Matrix mutated its input")
		}
		if tm.Data[i] != TruncateF16(v) {
			t.Fatalf("elem %d: %v != TruncateF16(%v)", i, tm.Data[i], v)
		}
	}
}

func BenchmarkMatVecScalar(b *testing.B) {
	rng := NewRNG(1)
	a := RandomMatrix(rng, 64, 64, 1)
	x := make([]float64, 64)
	dst := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecRefInto(dst, a, x)
	}
}

func BenchmarkMatVecBlocked(b *testing.B) {
	rng := NewRNG(1)
	a := RandomMatrix(rng, 64, 64, 1)
	x := make([]float64, 64)
	dst := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecInto(dst, a, x)
	}
}

func BenchmarkMatVecQuantized(b *testing.B) {
	rng := NewRNG(1)
	a := RandomMatrix(rng, 64, 64, 1)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	q := Quantize(a)
	xq := make([]int8, 64)
	dst := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sx := QuantizeVectorInto(xq, x)
		q.MatVecInto(dst, xq, sx)
	}
}

func BenchmarkMatMulTransBatch16(b *testing.B) {
	rng := NewRNG(1)
	w := RandomMatrix(rng, 64, 64, 1)
	x := RandomMatrix(rng, 16, 64, 1)
	dst := NewMatrix(16, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransInto(dst, x, w)
	}
}
