// Package tensor provides the dense linear-algebra substrate for LiveUpdate:
// row-major matrices, matrix products, a one-sided Jacobi SVD, truncated
// (Eckart–Young) low-rank approximation, PCA, and deterministic random
// number generation. Everything is stdlib-only and deterministic.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom wraps data (not copied) as a rows×cols matrix.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add accumulates other into m in place. Dimensions must match.
func (m *Matrix) Add(other *Matrix) {
	m.mustSameShape(other)
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Sub subtracts other from m in place. Dimensions must match.
func (m *Matrix) Sub(other *Matrix) {
	m.mustSameShape(other)
	for i := range m.Data {
		m.Data[i] -= other.Data[i]
	}
}

// AXPY performs m += alpha*other in place.
func (m *Matrix) AXPY(alpha float64, other *Matrix) {
	m.mustSameShape(other)
	for i := range m.Data {
		m.Data[i] += alpha * other.Data[i]
	}
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul returns a × b. It panics on a dimension mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	// ikj loop order: streams rows of b, cache friendly for row-major data.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatVec returns a × x for a column vector x (len == a.Cols).
func MatVec(a *Matrix, x []float64) []float64 {
	y := make([]float64, a.Rows)
	MatVecInto(y, a, x)
	return y
}

// MatVecInto computes a × x into dst (len == a.Rows), overwriting dst. It is
// the allocation-free core of the serving fast path: callers own dst and
// reuse it across requests. dst must not alias x.
func MatVecInto(dst []float64, a *Matrix, x []float64) {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: matvec %dx%d × %d", a.Rows, a.Cols, len(x)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("tensor: matvec dst len %d != %d rows", len(dst), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// ReLUInPlace clamps negative elements of x to zero in place.
func ReLUInPlace(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy performs y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 { return Norm2(m.Data) }

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// RandomMatrix fills a rows×cols matrix with N(0, stddev²) entries.
func RandomMatrix(rng *RNG, rows, cols int, stddev float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * stddev
	}
	return m
}

// XavierMatrix fills a rows×cols matrix with Xavier/Glorot-initialized
// entries suitable for MLP layers (uniform in ±sqrt(6/(fanIn+fanOut))).
func XavierMatrix(rng *RNG, rows, cols int) *Matrix {
	limit := math.Sqrt(6 / float64(rows+cols))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}
