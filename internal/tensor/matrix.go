// Package tensor provides the dense linear-algebra substrate for LiveUpdate:
// row-major matrices, matrix products, a one-sided Jacobi SVD, truncated
// (Eckart–Young) low-rank approximation, PCA, and deterministic random
// number generation. Everything is stdlib-only and deterministic.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom wraps data (not copied) as a rows×cols matrix.
func NewMatrixFrom(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add accumulates other into m in place. Dimensions must match.
func (m *Matrix) Add(other *Matrix) {
	m.mustSameShape(other)
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// Sub subtracts other from m in place. Dimensions must match.
func (m *Matrix) Sub(other *Matrix) {
	m.mustSameShape(other)
	for i := range m.Data {
		m.Data[i] -= other.Data[i]
	}
}

// AXPY performs m += alpha*other in place.
func (m *Matrix) AXPY(alpha float64, other *Matrix) {
	m.mustSameShape(other)
	for i := range m.Data {
		m.Data[i] += alpha * other.Data[i]
	}
}

func (m *Matrix) mustSameShape(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul returns a × b. It panics on a dimension mismatch. Thin allocating
// shim over MatMulInto; hot paths call the Into kernel directly.
func MatMul(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	MatMulInto(c, a, b)
	return c
}

// checkMatVec validates one matvec call. Every panic message carries both
// operand shapes (a, x, dst) so a mismatch is diagnosable from the message
// alone, whichever operand is wrong.
func checkMatVec(op string, dst []float64, a *Matrix, x []float64) {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("tensor: %s a=%dx%d x=%d dst=%d: len(x) must equal a.Cols",
			op, a.Rows, a.Cols, len(x), len(dst)))
	}
	if len(dst) != a.Rows {
		panic(fmt.Sprintf("tensor: %s a=%dx%d x=%d dst=%d: len(dst) must equal a.Rows",
			op, a.Rows, a.Cols, len(x), len(dst)))
	}
	if len(dst) > 0 && len(x) > 0 && &dst[0] == &x[0] {
		panic(fmt.Sprintf("tensor: %s a=%dx%d x=%d dst=%d: dst must not alias x",
			op, a.Rows, a.Cols, len(x), len(dst)))
	}
}

// MatVec returns a × x for a column vector x (len == a.Cols). Thin allocating
// shim over MatVecInto.
func MatVec(a *Matrix, x []float64) []float64 {
	y := make([]float64, a.Rows)
	MatVecInto(y, a, x)
	return y
}

// MatVecRefInto is the naive scalar matvec: one accumulator per output row,
// columns in order. It is the bit-for-bit ground truth the blocked kernel is
// property-tested against (and the baseline the `kernels` experiment times);
// serving paths use MatVecInto.
func MatVecRefInto(dst []float64, a *Matrix, x []float64) {
	checkMatVec("matvec", dst, a, x)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MatVecInto computes a × x into dst (len == a.Rows), overwriting dst. It is
// the allocation-free core of the serving fast path: callers own dst and
// reuse it across requests. dst must not alias x.
//
// The kernel is register-blocked over rows, four at a time, so each loaded
// x[j] feeds four multiply-adds instead of one. Every output element keeps
// its own accumulator and sums columns in the same sequential order as the
// scalar reference, so results are bit-identical to MatVecRefInto
// (TestKernelBlockedMatchesReference).
func MatVecInto(dst []float64, a *Matrix, x []float64) {
	checkMatVec("matvec", dst, a, x)
	n := a.Cols
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		r0 := a.Data[(i+0)*n : (i+1)*n]
		r1 := a.Data[(i+1)*n : (i+2)*n]
		r2 := a.Data[(i+2)*n : (i+3)*n]
		r3 := a.Data[(i+3)*n : (i+4)*n]
		var s0, s1, s2, s3 float64
		for j, xv := range x {
			s0 += r0[j] * xv
			s1 += r1[j] * xv
			s2 += r2[j] * xv
			s3 += r3[j] * xv
		}
		dst[i+0] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < a.Rows; i++ {
		row := a.Data[i*n : (i+1)*n]
		s := 0.0
		for j, xv := range x {
			s += row[j] * xv
		}
		dst[i] = s
	}
}

// checkMatMul validates one matmul-family call: both operand shapes appear in
// every message, and dst must alias neither operand.
func checkMatMul(op string, dst, a, b *Matrix, wantRows, wantCols int, innerOK bool) {
	if !innerOK {
		panic(fmt.Sprintf("tensor: %s a=%dx%d b=%dx%d: inner dimensions must agree",
			op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != wantRows || dst.Cols != wantCols {
		panic(fmt.Sprintf("tensor: %s a=%dx%d b=%dx%d dst=%dx%d: dst must be %dx%d",
			op, a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols, wantRows, wantCols))
	}
	if len(dst.Data) > 0 {
		if len(a.Data) > 0 && &dst.Data[0] == &a.Data[0] {
			panic(fmt.Sprintf("tensor: %s a=%dx%d b=%dx%d dst=%dx%d: dst must not alias a",
				op, a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
		}
		if len(b.Data) > 0 && &dst.Data[0] == &b.Data[0] {
			panic(fmt.Sprintf("tensor: %s a=%dx%d b=%dx%d dst=%dx%d: dst must not alias b",
				op, a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
		}
	}
}

// MatMulInto computes a × b into dst (a.Rows × b.Cols), overwriting dst. The
// loop order is ikj — both b and dst stream row-wise — with the k loop
// unrolled four-wide so each dst row stays in registers across four b rows.
// Per output element the k terms accumulate strictly in order, so results are
// bit-identical to the scalar ikj reference.
func MatMulInto(dst, a, b *Matrix) {
	checkMatMul("matmul", dst, a, b, a.Rows, b.Cols, a.Cols == b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := dst.Row(i)
		for j := range crow {
			crow[j] = 0
		}
		k := 0
		for ; k+4 <= a.Cols; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := b.Row(k)
			b1 := b.Row(k + 1)
			b2 := b.Row(k + 2)
			b3 := b.Row(k + 3)
			for j := range crow {
				s := crow[j]
				s += a0 * b0[j]
				s += a1 * b1[j]
				s += a2 * b2[j]
				s += a3 * b3[j]
				crow[j] = s
			}
		}
		for ; k < a.Cols; k++ {
			av := arow[k]
			brow := b.Row(k)
			for j := range crow {
				crow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransInto computes a × bᵀ into dst (a.Rows × b.Rows): dst[i][o] is
// the dot product of a's row i with b's row o. This is the batched-inference
// GEMM — a batch of activation rows times a row-major weight matrix — and
// both operands stream row-wise with no transposition. The kernel is tiled
// 2×2 (two a rows × two b rows share four register accumulators), and each
// output element sums columns in the same sequential order as MatVecInto, so
// a batched forward is bit-identical to per-sample matvecs.
func MatMulTransInto(dst, a, b *Matrix) {
	checkMatMul("matmulT", dst, a, b, a.Rows, b.Rows, a.Cols == b.Cols)
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		x0, x1 := a.Row(i), a.Row(i+1)
		c0, c1 := dst.Row(i), dst.Row(i+1)
		o := 0
		for ; o+2 <= b.Rows; o += 2 {
			w0, w1 := b.Row(o), b.Row(o+1)
			var s00, s01, s10, s11 float64
			for j, xv0 := range x0 {
				xv1 := x1[j]
				wv0, wv1 := w0[j], w1[j]
				s00 += wv0 * xv0
				s01 += wv1 * xv0
				s10 += wv0 * xv1
				s11 += wv1 * xv1
			}
			c0[o], c0[o+1] = s00, s01
			c1[o], c1[o+1] = s10, s11
		}
		for ; o < b.Rows; o++ {
			w := b.Row(o)
			var s0, s1 float64
			for j, wv := range w {
				s0 += wv * x0[j]
				s1 += wv * x1[j]
			}
			c0[o], c1[o] = s0, s1
		}
	}
	for ; i < a.Rows; i++ {
		MatVecInto(dst.Row(i), b, a.Row(i))
	}
}

// ReLUInPlace clamps negative elements of x to zero in place.
func ReLUInPlace(x []float64) {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy performs y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 { return Norm2(m.Data) }

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// RandomMatrix fills a rows×cols matrix with N(0, stddev²) entries.
func RandomMatrix(rng *RNG, rows, cols int, stddev float64) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * stddev
	}
	return m
}

// XavierMatrix fills a rows×cols matrix with Xavier/Glorot-initialized
// entries suitable for MLP layers (uniform in ±sqrt(6/(fanIn+fanOut))).
func XavierMatrix(rng *RNG, rows, cols int) *Matrix {
	limit := math.Sqrt(6 / float64(rows+cols))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}
