package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("new matrix not zeroed")
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v, want 7.5", row[2])
	}
	row[0] = 3 // aliasing
	if m.At(1, 0) != 3 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c.Data[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := RandomMatrix(rng, 5, 5, 1)
	id := NewMatrix(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEqual(c.Data[i], a.Data[i], 1e-12) {
			t.Fatalf("A*I != A at %d: %v vs %v", i, c.Data[i], a.Data[i])
		}
	}
}

func TestMatMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestTransposeInvolution(t *testing.T) {
	rng := NewRNG(2)
	a := RandomMatrix(rng, 4, 7, 1)
	tt := a.T().T()
	for i := range a.Data {
		if a.Data[i] != tt.Data[i] {
			t.Fatal("transpose is not an involution")
		}
	}
}

func TestMatVec(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 3, 0})
	y := MatVec(a, []float64{1, 2, 3})
	if y[0] != 7 || y[1] != 6 {
		t.Fatalf("MatVec = %v, want [7 6]", y)
	}
}

func TestMatVecInto(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 3, 0})
	dst := []float64{99, 99} // stale values must be overwritten, not accumulated
	MatVecInto(dst, a, []float64{1, 2, 3})
	if dst[0] != 7 || dst[1] != 6 {
		t.Fatalf("MatVecInto = %v, want [7 6]", dst)
	}
	x := []float64{1, 2, 3}
	if n := testing.AllocsPerRun(100, func() {
		MatVecInto(dst, a, x)
	}); n != 0 {
		t.Fatalf("MatVecInto allocates %v per run, want 0", n)
	}
}

func TestMatVecIntoPanics(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 3, 0})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad x", func() { MatVecInto(make([]float64, 2), a, []float64{1, 2}) })
	mustPanic("bad dst", func() { MatVecInto(make([]float64, 3), a, []float64{1, 2, 3}) })
}

func TestReLUInPlace(t *testing.T) {
	x := []float64{-1, 0, 2.5, -0.001, 7}
	ReLUInPlace(x)
	want := []float64{0, 0, 2.5, 0, 7}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("ReLUInPlace = %v, want %v", x, want)
		}
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := NewMatrixFrom(1, 3, []float64{1, 2, 3})
	b := NewMatrixFrom(1, 3, []float64{4, 5, 6})
	a.Add(b)
	if a.Data[0] != 5 || a.Data[2] != 9 {
		t.Fatalf("Add wrong: %v", a.Data)
	}
	a.Sub(b)
	if a.Data[0] != 1 || a.Data[2] != 3 {
		t.Fatalf("Sub wrong: %v", a.Data)
	}
	a.Scale(2)
	if a.Data[1] != 4 {
		t.Fatalf("Scale wrong: %v", a.Data)
	}
	a.AXPY(0.5, b)
	if a.Data[0] != 4 {
		t.Fatalf("AXPY wrong: %v", a.Data)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewMatrixFrom(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("frobenius = %v, want 5", m.FrobeniusNorm())
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewMatrixFrom(1, 3, []float64{-7, 2, 3})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", m.MaxAbs())
	}
	if NewMatrix(0, 0).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty must be 0")
	}
}

func TestXavierMatrixBounds(t *testing.T) {
	rng := NewRNG(3)
	m := XavierMatrix(rng, 8, 8)
	limit := math.Sqrt(6.0 / 16.0)
	for _, v := range m.Data {
		if math.Abs(v) > limit {
			t.Fatalf("xavier value %v exceeds limit %v", v, limit)
		}
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestPropertyMatMulTranspose(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandomMatrix(rng, m, k, 1)
		b := RandomMatrix(rng, k, n, 1)
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) == AB + AC.
func TestPropertyMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandomMatrix(rng, m, k, 1)
		b := RandomMatrix(rng, k, n, 1)
		c := RandomMatrix(rng, k, n, 1)
		sum := b.Clone()
		sum.Add(c)
		lhs := MatMul(a, sum)
		rhs := MatMul(a, b)
		rhs.Add(MatMul(a, c))
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(11)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	rng := NewRNG(5)
	p := rng.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(9)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children should differ")
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(13)
	z := NewZipf(rng, 1000, 1.1)
	counts := make([]int, 1000)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Item 0 must be sampled far more than item 999.
	if counts[0] < 50*counts[999]+1 {
		t.Fatalf("zipf not skewed: head %d tail %d", counts[0], counts[999])
	}
	// Top 10% of items should dominate accesses (paper Fig 12: ~90%+).
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/float64(n) < 0.60 {
		t.Fatalf("top-10%% share %v too low for s=1.1", float64(top)/float64(n))
	}
}

func TestZipfBounds(t *testing.T) {
	rng := NewRNG(17)
	z := NewZipf(rng, 10, 1.0)
	if z.N() != 10 {
		t.Fatalf("N = %d, want 10", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 10 {
			t.Fatalf("zipf sample out of range: %d", v)
		}
	}
}
