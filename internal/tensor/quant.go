package tensor

import (
	"fmt"
	"math"
)

// QuantizedMatrix is an int8 row-major matrix with one dequantization scale
// per row: the float value of element (i, j) is Data[i*Cols+j] * Scale[i].
// Rows are quantized symmetrically (no zero point), scale = maxAbs/127, so a
// zero row has scale 0 and quantizes exactly.
type QuantizedMatrix struct {
	Rows, Cols int
	Data       []int8
	Scale      []float64
}

// Quantize converts m to int8 with per-row symmetric scales.
func Quantize(m *Matrix) *QuantizedMatrix {
	q := &QuantizedMatrix{
		Rows:  m.Rows,
		Cols:  m.Cols,
		Data:  make([]int8, m.Rows*m.Cols),
		Scale: make([]float64, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / 127
		inv := 1 / scale
		q.Scale[i] = scale
		qrow := q.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			qrow[j] = int8(math.Round(v * inv))
		}
	}
	return q
}

// Row returns the int8 row i, aliasing the underlying storage.
func (q *QuantizedMatrix) Row(i int) []int8 {
	return q.Data[i*q.Cols : (i+1)*q.Cols]
}

// QuantizeVectorInto quantizes x into xq (same length) with one shared
// symmetric scale, returned to the caller. The activation is quantized once
// per layer and reused across all output rows of the int8 matvec.
func QuantizeVectorInto(xq []int8, x []float64) float64 {
	if len(xq) != len(x) {
		panic(fmt.Sprintf("tensor: quantize vector xq=%d x=%d: lengths must match", len(xq), len(x)))
	}
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range xq {
			xq[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range x {
		xq[i] = int8(math.Round(v * inv))
	}
	return scale
}

// MatVecInto computes q × xq into dst, where xq was produced by
// QuantizeVectorInto with scale sx. The dot products run entirely in int32 —
// no per-element dequantization — and each output is rescaled once by the
// combined row×activation scale. Safe for inner dimensions below ~133k
// (127*127 per term in an int32 accumulator). dst must not alias xq's
// backing array (they have different element types, so they never do).
func (q *QuantizedMatrix) MatVecInto(dst []float64, xq []int8, sx float64) {
	if len(xq) != q.Cols {
		panic(fmt.Sprintf("tensor: qmatvec a=%dx%d x=%d dst=%d: len(x) must equal a.Cols",
			q.Rows, q.Cols, len(xq), len(dst)))
	}
	if len(dst) != q.Rows {
		panic(fmt.Sprintf("tensor: qmatvec a=%dx%d x=%d dst=%d: len(dst) must equal a.Rows",
			q.Rows, q.Cols, len(xq), len(dst)))
	}
	n := q.Cols
	i := 0
	for ; i+4 <= q.Rows; i += 4 {
		r0 := q.Data[(i+0)*n : (i+1)*n]
		r1 := q.Data[(i+1)*n : (i+2)*n]
		r2 := q.Data[(i+2)*n : (i+3)*n]
		r3 := q.Data[(i+3)*n : (i+4)*n]
		var s0, s1, s2, s3 int32
		for j, xv := range xq {
			v := int32(xv)
			s0 += int32(r0[j]) * v
			s1 += int32(r1[j]) * v
			s2 += int32(r2[j]) * v
			s3 += int32(r3[j]) * v
		}
		dst[i+0] = float64(s0) * (q.Scale[i+0] * sx)
		dst[i+1] = float64(s1) * (q.Scale[i+1] * sx)
		dst[i+2] = float64(s2) * (q.Scale[i+2] * sx)
		dst[i+3] = float64(s3) * (q.Scale[i+3] * sx)
	}
	for ; i < q.Rows; i++ {
		row := q.Data[i*n : (i+1)*n]
		var s int32
		for j, xv := range xq {
			s += int32(row[j]) * int32(xv)
		}
		dst[i] = float64(s) * (q.Scale[i] * sx)
	}
}

// TruncateF16 drops the low 13 mantissa bits of v's float32 form, leaving the
// 10 explicit mantissa bits an IEEE binary16 would keep. It is an "f16-style"
// truncation — exponent range stays float32, no rounding — used to emulate
// half-precision weight storage without a real f16 type.
func TruncateF16(v float64) float64 {
	bits := math.Float32bits(float32(v))
	bits &^= (1 << 13) - 1
	return float64(math.Float32frombits(bits))
}

// TruncateF16Matrix returns a copy of m with every element passed through
// TruncateF16.
func TruncateF16Matrix(m *Matrix) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = TruncateF16(v)
	}
	return out
}
