package tensor

// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the repository flows through RNG so that every experiment
// is exactly reproducible from a seed. The generator is xoshiro256**, seeded
// via SplitMix64 as recommended by its authors.

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// It is not safe for concurrent use; create one per goroutine via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from the current state. The parent
// stream advances, so successive Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1) using
// the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf samples from a Zipf distribution over [0, n) with exponent s > 0
// using inverse-CDF over precomputed weights held by the caller; see
// NewZipf for the sampler type.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over n items with exponent s. Item 0 is the
// most popular. The construction is O(n); sampling is O(log n).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("tensor: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N returns the number of items the sampler draws from.
func (z *Zipf) N() int { return len(z.cdf) }

// Next samples the next item id in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
