package tensor

// Singular value decomposition via one-sided Jacobi rotations, plus the
// truncated (Eckart–Young) rank-k approximation and PCA used by LiveUpdate's
// dynamic rank adaptation (paper §III-B, §IV-C).
//
// One-sided Jacobi orthogonalizes the columns of a working copy of A by
// plane rotations; the resulting column norms are the singular values. It is
// simple, numerically robust, and fast enough for the d ≤ 64 embedding
// dimensions the paper operates on.

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ with
// singular values sorted in non-increasing order.
type SVD struct {
	U *Matrix   // m×n, orthonormal columns
	S []float64 // n singular values, descending
	V *Matrix   // n×n, orthonormal columns
}

const (
	jacobiMaxSweeps = 60
	jacobiTol       = 1e-12
)

// ComputeSVD returns the thin SVD of a. For m < n the decomposition is
// computed on the transpose and swapped back. The input is not modified.
func ComputeSVD(a *Matrix) *SVD {
	if a.Rows < a.Cols {
		s := ComputeSVD(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	m, n := a.Rows, a.Cols
	// Work on column-major copies for fast column access.
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		c := make([]float64, m)
		for i := 0; i < m; i++ {
			c[i] = a.At(i, j)
		}
		cols[j] = c
	}
	v := make([][]float64, n)
	for j := 0; j < n; j++ {
		v[j] = make([]float64, n)
		v[j][j] = 1
	}

	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha := Dot(cols[p], cols[p])
				beta := Dot(cols[q], cols[q])
				gamma := Dot(cols[p], cols[q])
				if math.Abs(gamma) <= jacobiTol*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += gamma * gamma
				// Compute rotation (c, s) that zeroes the (p, q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta > 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				rotate(cols[p], cols[q], c, s)
				rotate(v[p], v[q], c, s)
			}
		}
		if off < jacobiTol {
			break
		}
	}

	// Column norms are singular values; normalize columns to get U.
	type cs struct {
		sigma float64
		idx   int
	}
	order := make([]cs, n)
	for j := 0; j < n; j++ {
		order[j] = cs{sigma: Norm2(cols[j]), idx: j}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].sigma > order[j].sigma })

	svd := &SVD{U: NewMatrix(m, n), S: make([]float64, n), V: NewMatrix(n, n)}
	for j, o := range order {
		svd.S[j] = o.sigma
		col := cols[o.idx]
		if o.sigma > 0 {
			inv := 1 / o.sigma
			for i := 0; i < m; i++ {
				svd.U.Set(i, j, col[i]*inv)
			}
		}
		vc := v[o.idx]
		for i := 0; i < n; i++ {
			svd.V.Set(i, j, vc[i])
		}
	}
	return svd
}

// rotate applies the plane rotation [c s; -s c] to the column pair (x, y).
func rotate(x, y []float64, c, s float64) {
	for i := range x {
		xi, yi := x[i], y[i]
		x[i] = c*xi - s*yi
		y[i] = s*xi + c*yi
	}
}

// Rank returns the number of singular values greater than tol·S[0].
func (s *SVD) Rank(tol float64) int {
	if len(s.S) == 0 || s.S[0] == 0 {
		return 0
	}
	thresh := tol * s.S[0]
	r := 0
	for _, v := range s.S {
		if v > thresh {
			r++
		}
	}
	return r
}

// TruncatedSVD returns the optimal rank-k approximation factors of a
// (Eckart–Young–Mirsky): A ≈ (U_k·Σ_k) · V_kᵀ, returned as the pair
// (left = U_k·Σ_k, right = V_kᵀ) so that left×right reconstructs A_k.
// k is clamped to [0, min(m, n)].
func TruncatedSVD(a *Matrix, k int) (left, right *Matrix) {
	svd := ComputeSVD(a)
	n := len(svd.S)
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	left = NewMatrix(a.Rows, k)
	right = NewMatrix(k, a.Cols)
	for j := 0; j < k; j++ {
		for i := 0; i < a.Rows; i++ {
			left.Set(i, j, svd.U.At(i, j)*svd.S[j])
		}
		for i := 0; i < a.Cols; i++ {
			right.Set(j, i, svd.V.At(i, j))
		}
	}
	return left, right
}

// VarianceRank returns the smallest rank k such that the top-k squared
// singular values capture at least fraction alpha of the total squared
// spectrum (paper Eq. 2). For an all-zero spectrum it returns 1.
func VarianceRank(singular []float64, alpha float64) int {
	total := 0.0
	for _, s := range singular {
		total += s * s
	}
	if total == 0 {
		return 1
	}
	cum := 0.0
	for i, s := range singular {
		cum += s * s
		if cum/total >= alpha {
			return i + 1
		}
	}
	return len(singular)
}

// PCA holds the principal components of a data matrix.
type PCA struct {
	Components  *Matrix   // d×d, columns are principal directions
	Eigenvalues []float64 // descending; variance captured by each component
}

// ComputePCA performs principal component analysis of the rows of a
// (observations × features). Rows are mean-centered, then the SVD of the
// centered matrix yields components and eigenvalues λ_j = σ_j²/(rows-1).
func ComputePCA(a *Matrix) *PCA {
	m, n := a.Rows, a.Cols
	centered := a.Clone()
	mean := make([]float64, n)
	for i := 0; i < m; i++ {
		row := a.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	if m > 0 {
		for j := range mean {
			mean[j] /= float64(m)
		}
	}
	for i := 0; i < m; i++ {
		row := centered.Row(i)
		for j := range row {
			row[j] -= mean[j]
		}
	}
	svd := ComputeSVD(centered)
	denom := float64(m - 1)
	if denom < 1 {
		denom = 1
	}
	eig := make([]float64, len(svd.S))
	for i, s := range svd.S {
		eig[i] = s * s / denom
	}
	return &PCA{Components: svd.V, Eigenvalues: eig}
}

// CumulativeImportance returns, for each k, the fraction of total variance
// captured by the top-k eigenvalues (the curve plotted in paper Fig. 6).
func (p *PCA) CumulativeImportance() []float64 {
	out := make([]float64, len(p.Eigenvalues))
	total := 0.0
	for _, e := range p.Eigenvalues {
		total += e
	}
	if total == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	cum := 0.0
	for i, e := range p.Eigenvalues {
		cum += e
		out[i] = cum / total
	}
	return out
}

// MinRankForVariance returns the smallest k whose cumulative importance
// reaches alpha (paper Eq. 2 applied to PCA eigenvalues).
func (p *PCA) MinRankForVariance(alpha float64) int {
	ci := p.CumulativeImportance()
	for i, v := range ci {
		if v >= alpha {
			return i + 1
		}
	}
	return len(ci)
}
