package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

// reconstruct computes U·diag(S)·Vᵀ.
func reconstruct(s *SVD) *Matrix {
	n := len(s.S)
	us := s.U.Clone()
	for i := 0; i < us.Rows; i++ {
		row := us.Row(i)
		for j := 0; j < n; j++ {
			row[j] *= s.S[j]
		}
	}
	return MatMul(us, s.V.T())
}

func TestSVDReconstructionSmall(t *testing.T) {
	a := NewMatrixFrom(3, 2, []float64{1, 2, 3, 4, 5, 6})
	s := ComputeSVD(a)
	r := reconstruct(s)
	for i := range a.Data {
		if !almostEqual(r.Data[i], a.Data[i], 1e-9) {
			t.Fatalf("reconstruction mismatch at %d: %v vs %v", i, r.Data[i], a.Data[i])
		}
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	rng := NewRNG(21)
	a := RandomMatrix(rng, 20, 8, 1)
	s := ComputeSVD(a)
	for i := 1; i < len(s.S); i++ {
		if s.S[i] > s.S[i-1]+1e-12 {
			t.Fatalf("singular values not sorted: %v", s.S)
		}
	}
	for _, v := range s.S {
		if v < 0 {
			t.Fatalf("negative singular value %v", v)
		}
	}
}

func TestSVDOrthonormalV(t *testing.T) {
	rng := NewRNG(22)
	a := RandomMatrix(rng, 10, 6, 1)
	s := ComputeSVD(a)
	vtv := MatMul(s.V.T(), s.V)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(vtv.At(i, j), want, 1e-8) {
				t.Fatalf("VᵀV[%d][%d] = %v, want %v", i, j, vtv.At(i, j), want)
			}
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := NewRNG(23)
	a := RandomMatrix(rng, 4, 9, 1) // m < n path
	s := ComputeSVD(a)
	r := reconstruct(s)
	if r.Rows != 4 || r.Cols != 9 {
		t.Fatalf("wide reconstruction shape %dx%d", r.Rows, r.Cols)
	}
	for i := range a.Data {
		if !almostEqual(r.Data[i], a.Data[i], 1e-8) {
			t.Fatal("wide-matrix reconstruction mismatch")
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{3, 0, 0, 0, 2, 0, 0, 0, 1})
	s := ComputeSVD(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEqual(s.S[i], w, 1e-10) {
			t.Fatalf("S[%d] = %v, want %v", i, s.S[i], w)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewMatrix(4, 3)
	u := []float64{1, 2, 3, 4}
	v := []float64{1, 1, 2}
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, u[i]*v[j])
		}
	}
	s := ComputeSVD(a)
	if got := s.Rank(1e-9); got != 1 {
		t.Fatalf("rank = %d, want 1 (S=%v)", got, s.S)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	s := ComputeSVD(NewMatrix(3, 3))
	for _, v := range s.S {
		if v != 0 {
			t.Fatalf("zero matrix should have zero spectrum: %v", s.S)
		}
	}
	if s.Rank(1e-9) != 0 {
		t.Fatal("zero matrix rank must be 0")
	}
}

// Property: SVD reconstruction error is tiny relative to the matrix norm.
func TestPropertySVDReconstruction(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, n := 2+rng.Intn(12), 2+rng.Intn(8)
		a := RandomMatrix(rng, m, n, 2)
		s := ComputeSVD(a)
		r := reconstruct(s)
		r.Sub(a)
		return r.FrobeniusNorm() <= 1e-7*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property (Eckart–Young): the rank-k truncation error equals
// sqrt(sum of squared discarded singular values).
func TestPropertyEckartYoung(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, n := 3+rng.Intn(10), 3+rng.Intn(6)
		a := RandomMatrix(rng, m, n, 1)
		s := ComputeSVD(a)
		k := 1 + rng.Intn(minInt(m, n))
		left, right := TruncatedSVD(a, k)
		approx := MatMul(left, right)
		approx.Sub(a)
		got := approx.FrobeniusNorm()
		want := 0.0
		for i := k; i < len(s.S); i++ {
			want += s.S[i] * s.S[i]
		}
		want = math.Sqrt(want)
		return almostEqual(got, want, 1e-6*(1+a.FrobeniusNorm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTruncatedSVDShapes(t *testing.T) {
	rng := NewRNG(31)
	a := RandomMatrix(rng, 10, 6, 1)
	left, right := TruncatedSVD(a, 3)
	if left.Rows != 10 || left.Cols != 3 || right.Rows != 3 || right.Cols != 6 {
		t.Fatalf("bad shapes left %dx%d right %dx%d", left.Rows, left.Cols, right.Rows, right.Cols)
	}
	// k beyond min dim clamps.
	left, right = TruncatedSVD(a, 99)
	if left.Cols != 6 || right.Rows != 6 {
		t.Fatalf("clamping failed: left cols %d", left.Cols)
	}
	// k = 0 gives empty factors.
	left, right = TruncatedSVD(a, 0)
	if left.Cols != 0 || right.Rows != 0 {
		t.Fatal("k=0 should yield empty factors")
	}
}

func TestVarianceRank(t *testing.T) {
	s := []float64{3, 2, 1}                    // squared: 9, 4, 1; total 14
	if got := VarianceRank(s, 0.5); got != 1 { // 9/14 = 0.64 >= 0.5
		t.Fatalf("VarianceRank(0.5) = %d, want 1", got)
	}
	if got := VarianceRank(s, 0.9); got != 2 { // 13/14 = 0.93
		t.Fatalf("VarianceRank(0.9) = %d, want 2", got)
	}
	if got := VarianceRank(s, 0.99); got != 3 {
		t.Fatalf("VarianceRank(0.99) = %d, want 3", got)
	}
	if got := VarianceRank(nil, 0.8); got != 1 {
		t.Fatalf("VarianceRank(nil) = %d, want 1", got)
	}
	if got := VarianceRank([]float64{0, 0}, 0.8); got != 1 {
		t.Fatalf("VarianceRank(zeros) = %d, want 1", got)
	}
}

func TestPCALowRankData(t *testing.T) {
	// Generate data that lies (noisily) in a 2-D subspace of R^8.
	rng := NewRNG(41)
	d := 8
	b1 := make([]float64, d)
	b2 := make([]float64, d)
	for j := 0; j < d; j++ {
		b1[j] = rng.NormFloat64()
		b2[j] = rng.NormFloat64()
	}
	n := 200
	data := NewMatrix(n, d)
	for i := 0; i < n; i++ {
		c1, c2 := rng.NormFloat64()*3, rng.NormFloat64()*2
		row := data.Row(i)
		for j := 0; j < d; j++ {
			row[j] = c1*b1[j] + c2*b2[j] + rng.NormFloat64()*0.01
		}
	}
	pca := ComputePCA(data)
	if k := pca.MinRankForVariance(0.95); k > 2 {
		t.Fatalf("2-D data needed rank %d for 95%% variance", k)
	}
	ci := pca.CumulativeImportance()
	if ci[len(ci)-1] < 0.999 {
		t.Fatalf("cumulative importance must end at 1, got %v", ci[len(ci)-1])
	}
	for i := 1; i < len(ci); i++ {
		if ci[i] < ci[i-1]-1e-12 {
			t.Fatal("cumulative importance must be non-decreasing")
		}
	}
}

func TestPCAMeanInvariance(t *testing.T) {
	// Adding a constant offset to all rows must not change eigenvalues.
	rng := NewRNG(43)
	a := RandomMatrix(rng, 50, 5, 1)
	shifted := a.Clone()
	for i := 0; i < shifted.Rows; i++ {
		row := shifted.Row(i)
		for j := range row {
			row[j] += 100
		}
	}
	p1 := ComputePCA(a)
	p2 := ComputePCA(shifted)
	for i := range p1.Eigenvalues {
		if !almostEqual(p1.Eigenvalues[i], p2.Eigenvalues[i], 1e-6*(1+p1.Eigenvalues[0])) {
			t.Fatalf("eigenvalue %d changed under mean shift: %v vs %v",
				i, p1.Eigenvalues[i], p2.Eigenvalues[i])
		}
	}
}

func TestPCAZeroVariance(t *testing.T) {
	a := NewMatrix(10, 4) // all-zero data
	p := ComputePCA(a)
	ci := p.CumulativeImportance()
	for _, v := range ci {
		if v != 1 {
			t.Fatalf("zero-variance CI should be all 1s, got %v", ci)
		}
	}
	if k := p.MinRankForVariance(0.8); k != 1 {
		t.Fatalf("zero-variance min rank = %d, want 1", k)
	}
}
