package trace

import (
	"fmt"
	"math"

	"liveupdate/internal/tensor"
)

// Sample is one labeled user-item interaction from the synthetic stream.
type Sample struct {
	Time   float64   // virtual time in seconds since stream start
	Dense  []float64 // continuous features
	Sparse [][]int32 // per-table categorical ids (multi-hot)
	Label  int       // 1 = click
}

// Generator produces a deterministic, drifting CTR stream for a Profile.
//
// Ground truth: each table row carries a hidden vector g ∈ R^h and a hidden
// context vector c(t) performs a slow random walk on the unit sphere. The
// click logit is the pooled dot product ⟨ḡ(sample), c(t)⟩ plus a dense-feature
// term, so as c(t) drifts, the optimal embedding-derived scores change and a
// stale model loses accuracy (paper Fig 3b). Popularity churn occasionally
// swaps item ranks to model emerging trends (the "semantically critical but
// low-gradient updates" QuickUpdate misses).
type Generator struct {
	Profile Profile

	rng     *tensor.RNG
	hidden  int
	gTables []*tensor.Matrix // per table: TableSize × hidden ground-truth vectors
	denseW  []float64        // hidden weights for dense features (len NumDense)
	context []float64        // c(t), unit length, drifts over time
	bias    float64

	zipfs   []*tensor.Zipf
	rankMap [][]int32 // per table: popularity rank → item id (churn permutes this)

	now          float64 // virtual seconds
	accessCounts [][]uint64
	emitted      uint64
}

// NewGenerator builds a generator for profile p seeded from seed.
func NewGenerator(p Profile, seed uint64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	const hidden = 8
	g := &Generator{
		Profile: p,
		rng:     rng,
		hidden:  hidden,
		denseW:  make([]float64, p.NumDense),
		context: make([]float64, hidden),
	}
	for i := 0; i < p.NumTables; i++ {
		g.gTables = append(g.gTables, tensor.RandomMatrix(rng, p.TableSize, hidden, 1))
		g.zipfs = append(g.zipfs, tensor.NewZipf(rng.Split(), p.TableSize, p.ZipfS))
		ranks := make([]int32, p.TableSize)
		for j := range ranks {
			ranks[j] = int32(j)
		}
		g.rankMap = append(g.rankMap, ranks)
		g.accessCounts = append(g.accessCounts, make([]uint64, p.TableSize))
	}
	for i := range g.denseW {
		g.denseW[i] = rng.NormFloat64() * 0.5
	}
	for i := range g.context {
		g.context[i] = rng.NormFloat64()
	}
	normalize(g.context)
	// Bias calibrates the base positive rate: sigmoid(bias) ≈ PositiveRate.
	g.bias = math.Log(p.PositiveRate / (1 - p.PositiveRate))
	return g, nil
}

// MustNewGenerator is NewGenerator that panics on invalid profiles; intended
// for tests and examples with known-good profiles.
func MustNewGenerator(p Profile, seed uint64) *Generator {
	g, err := NewGenerator(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Now returns the current virtual time in seconds.
func (g *Generator) Now() float64 { return g.now }

// Emitted returns the number of samples generated so far.
func (g *Generator) Emitted() uint64 { return g.emitted }

// Advance moves virtual time forward by dt seconds, applying ground-truth
// drift and popularity churn proportional to the elapsed interval.
func (g *Generator) Advance(dt float64) {
	if dt <= 0 {
		return
	}
	g.now += dt
	hours := dt / 3600
	// Random-walk drift on the context vector, scaled so that DriftRate
	// controls expected angular change per hour.
	step := g.Profile.DriftRate * math.Sqrt(hours)
	for i := range g.context {
		g.context[i] += step * g.rng.NormFloat64()
	}
	normalize(g.context)

	// Popularity churn: swap a fraction of rank slots.
	for t := range g.rankMap {
		swaps := int(g.Profile.ChurnPerHour * hours * float64(g.Profile.TableSize))
		for s := 0; s < swaps; s++ {
			a := g.rng.Intn(g.Profile.TableSize)
			b := g.rng.Intn(g.Profile.TableSize)
			g.rankMap[t][a], g.rankMap[t][b] = g.rankMap[t][b], g.rankMap[t][a]
		}
	}
}

// Next generates the next sample at the current virtual time.
func (g *Generator) Next() Sample {
	p := g.Profile
	s := Sample{
		Time:   g.now,
		Dense:  make([]float64, p.NumDense),
		Sparse: make([][]int32, p.NumTables),
	}
	for i := range s.Dense {
		s.Dense[i] = g.rng.NormFloat64()
	}
	logit := g.bias
	for t := 0; t < p.NumTables; t++ {
		hot := p.MultiHot[t]
		ids := make([]int32, hot)
		pooled := make([]float64, g.hidden)
		for h := 0; h < hot; h++ {
			rank := g.zipfs[t].Next()
			id := g.rankMap[t][rank]
			ids[h] = id
			g.accessCounts[t][id]++
			tensor.Axpy(1/float64(hot), g.gTables[t].Row(int(id)), pooled)
		}
		s.Sparse[t] = ids
		logit += tensor.Dot(pooled, g.context) / float64(p.NumTables) * 2.5
	}
	denseSig := 0.0
	for i, v := range s.Dense {
		denseSig += v * g.denseW[i]
	}
	logit += denseSig * g.context[0] // dense contribution also drifts

	prob := sigmoid(logit)
	if g.rng.Float64() < prob {
		s.Label = 1
	}
	g.emitted++
	return s
}

// Batch generates n samples and advances virtual time by dt seconds spread
// evenly across them, modeling a steady arrival rate within the batch.
func (g *Generator) Batch(n int, dt float64) []Sample {
	if n <= 0 {
		return nil
	}
	out := make([]Sample, 0, n)
	per := dt / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
		g.Advance(per)
	}
	return out
}

// AccessCounts returns per-table, per-id access counts accumulated so far.
// The returned slices alias internal state; callers must not modify them.
func (g *Generator) AccessCounts() [][]uint64 { return g.accessCounts }

// ResetAccessCounts zeroes the access statistics.
func (g *Generator) ResetAccessCounts() {
	for _, c := range g.accessCounts {
		for i := range c {
			c[i] = 0
		}
	}
}

// ContextSnapshot returns a copy of the current ground-truth context vector;
// used by tests to verify drift behavior.
func (g *Generator) ContextSnapshot() []float64 {
	return append([]float64(nil), g.context...)
}

// RequestRateAt returns the instantaneous request rate (requests/second) at
// virtual time tSec, combining the profile's sustained load with the diurnal
// curve normalized to average 1.0.
func (g *Generator) RequestRateAt(tSec float64) float64 {
	base := float64(g.Profile.RequestsPer5Min) / 300
	hour := math.Mod(tSec/3600, 24)
	return base * DiurnalLoadFactor(hour)
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func normalize(v []float64) {
	n := tensor.Norm2(v)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// String implements fmt.Stringer for debugging.
func (g *Generator) String() string {
	return fmt.Sprintf("trace.Generator{%s, t=%.0fs, emitted=%d}",
		g.Profile.Name, g.now, g.emitted)
}
