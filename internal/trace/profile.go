// Package trace synthesizes the CTR workloads used across all LiveUpdate
// experiments: Zipf-skewed embedding accesses, temporal concept drift (so
// model freshness matters, paper Fig 3b), diurnal request-rate curves (paper
// Fig 4), and dataset profiles mirroring Table II.
//
// This is the substitution for the paper's production traces (BD-TB) and for
// NVIDIA's DLRM synthesis scripts: the generator's ground-truth preference
// vector evolves over virtual time, so a stale model measurably loses AUC and
// a freshly updated one recovers it — the exact dynamic the paper studies.
package trace

import (
	"fmt"
	"math"
)

// Profile describes a dataset for both real (laptop-scale training) and
// simulated (paper-scale cost accounting) experiments. The real-scale fields
// drive the generator; the paper-scale fields drive internal/simnet cost
// models.
type Profile struct {
	Name string

	// Real-scale generation parameters (laptop-sized, used for training).
	NumTables    int   // number of embedding tables (categorical fields)
	TableSize    int   // rows per table |V|
	EmbeddingDim int   // d
	NumDense     int   // dense feature count
	MultiHot     []int // ids looked up per table (1 = one-hot)

	// Statistical character.
	ZipfS        float64 // access skew exponent (≥1 → strong power law)
	DriftRate    float64 // ground-truth drift speed per virtual hour
	PositiveRate float64 // approximate base CTR
	ChurnPerHour float64 // fraction of items whose popularity rank churns hourly

	// Paper-scale system parameters (Table II / §V-A) for simulation.
	PaperEMTBytes     int64   // total embedding table bytes (e.g. 50 TB)
	PaperSamples      int64   // dataset sample count
	RequestsPer5Min   int64   // sustained load (paper: ~100M per 5 min)
	UpdateRatio10Min  float64 // fraction of EMT rows updated per 10-min window (Fig 3a)
	TrainBytesPer5Min int64   // new training data per 5 min (paper: 25 GB)
}

const (
	tb = int64(1) << 40
	gb = int64(1) << 30
)

// Profiles returns the registry of dataset profiles used in the paper's
// evaluation (Table II). The TB-scale variants share real-scale generation
// parameters with their public counterparts but carry 50 TB system-scale
// settings.
func Profiles() map[string]Profile {
	avazu := Profile{
		Name:      "Avazu",
		NumTables: 6, TableSize: 4000, EmbeddingDim: 16, NumDense: 8,
		MultiHot: []int{1, 1, 1, 1, 2, 1},
		ZipfS:    1.05, DriftRate: 0.25, PositiveRate: 0.17, ChurnPerHour: 0.02,
		PaperEMTBytes: 55 * gb / 100, PaperSamples: 32_300_000,
		RequestsPer5Min: 100_000_000, UpdateRatio10Min: 0.08,
		TrainBytesPer5Min: 25 * gb,
	}
	criteo := Profile{
		Name:      "Criteo",
		NumTables: 8, TableSize: 6000, EmbeddingDim: 16, NumDense: 13,
		MultiHot: []int{1, 1, 1, 1, 1, 1, 3, 1},
		ZipfS:    1.10, DriftRate: 0.35, PositiveRate: 0.26, ChurnPerHour: 0.03,
		PaperEMTBytes: 19 * gb / 10, PaperSamples: 45_800_000,
		RequestsPer5Min: 100_000_000, UpdateRatio10Min: 0.10,
		TrainBytesPer5Min: 25 * gb,
	}
	bdtb := Profile{
		Name:      "BD-TB",
		NumTables: 10, TableSize: 8000, EmbeddingDim: 16, NumDense: 16,
		MultiHot: []int{1, 1, 1, 1, 1, 2, 1, 1, 4, 1},
		ZipfS:    1.15, DriftRate: 0.45, PositiveRate: 0.12, ChurnPerHour: 0.05,
		PaperEMTBytes: 50 * tb, PaperSamples: 5_000_000_000,
		RequestsPer5Min: 100_000_000, UpdateRatio10Min: 0.11,
		TrainBytesPer5Min: 25 * gb,
	}
	avazuTB := avazu
	avazuTB.Name = "Avazu-TB"
	avazuTB.PaperEMTBytes = 50 * tb
	avazuTB.PaperSamples = 5_000_000_000
	avazuTB.UpdateRatio10Min = 0.09

	criteoTB := criteo
	criteoTB.Name = "Criteo-TB"
	criteoTB.PaperEMTBytes = 50 * tb
	criteoTB.PaperSamples = 5_000_000_000
	criteoTB.UpdateRatio10Min = 0.10

	return map[string]Profile{
		"avazu":     avazu,
		"criteo":    criteo,
		"bd-tb":     bdtb,
		"avazu-tb":  avazuTB,
		"criteo-tb": criteoTB,
	}
}

// ProfileByName returns the named profile or an error listing valid names.
func ProfileByName(name string) (Profile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown profile %q (valid: avazu, criteo, bd-tb, avazu-tb, criteo-tb)", name)
	}
	return p, nil
}

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	switch {
	case p.NumTables <= 0:
		return fmt.Errorf("trace: profile %s: NumTables must be positive", p.Name)
	case p.TableSize <= 0:
		return fmt.Errorf("trace: profile %s: TableSize must be positive", p.Name)
	case p.EmbeddingDim <= 0:
		return fmt.Errorf("trace: profile %s: EmbeddingDim must be positive", p.Name)
	case len(p.MultiHot) != p.NumTables:
		return fmt.Errorf("trace: profile %s: MultiHot length %d != NumTables %d",
			p.Name, len(p.MultiHot), p.NumTables)
	case p.PositiveRate <= 0 || p.PositiveRate >= 1:
		return fmt.Errorf("trace: profile %s: PositiveRate must be in (0,1)", p.Name)
	case p.ZipfS <= 0:
		return fmt.Errorf("trace: profile %s: ZipfS must be positive", p.Name)
	}
	for i, h := range p.MultiHot {
		if h <= 0 {
			return fmt.Errorf("trace: profile %s: MultiHot[%d] must be positive", p.Name, i)
		}
	}
	return nil
}

// TotalEmbeddingRows returns the laptop-scale total row count across tables.
func (p Profile) TotalEmbeddingRows() int { return p.NumTables * p.TableSize }

// DiurnalLoadFactor returns the relative request-rate multiplier at hourOfDay
// in [0, 24). The curve mimics the production utilization shape in paper
// Fig 4: a night trough around 04:00 and an evening peak around 21:00.
func DiurnalLoadFactor(hourOfDay float64) float64 {
	for hourOfDay < 0 {
		hourOfDay += 24
	}
	for hourOfDay >= 24 {
		hourOfDay -= 24
	}
	// Piecewise-smooth double hump: morning ramp, lunch plateau, evening peak.
	base := 0.35
	morning := gaussianBump(hourOfDay, 11, 3.0, 0.40)
	evening := gaussianBump(hourOfDay, 21, 2.5, 0.65)
	// Wrap the evening bump across midnight so 0-2h still sees decay.
	eveningWrap := gaussianBump(hourOfDay+24, 21, 2.5, 0.65)
	return base + morning + evening + eveningWrap
}

func gaussianBump(x, center, width, height float64) float64 {
	d := (x - center) / width
	return height * math.Exp(-d*d)
}
