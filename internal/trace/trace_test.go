package trace

import (
	"math"
	"testing"
	"testing/quick"

	"liveupdate/internal/metrics"
	"liveupdate/internal/tensor"
)

func testProfile() Profile {
	p := Profiles()["criteo"]
	p.TableSize = 500 // keep tests fast
	return p
}

func TestProfilesRegistry(t *testing.T) {
	ps := Profiles()
	for _, name := range []string{"avazu", "criteo", "bd-tb", "avazu-tb", "criteo-tb"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %q invalid: %v", name, err)
		}
	}
	// Table II scale checks.
	if ps["bd-tb"].PaperEMTBytes != 50*tb {
		t.Fatalf("bd-tb EMT bytes = %d, want 50 TB", ps["bd-tb"].PaperEMTBytes)
	}
	if ps["avazu"].PaperEMTBytes >= gb {
		t.Fatalf("avazu EMT should be sub-GB (0.55 GB)")
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("criteo"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("expected error for unknown profile")
	}
}

func TestProfileValidate(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.NumTables = 0 },
		func(p *Profile) { p.TableSize = -1 },
		func(p *Profile) { p.EmbeddingDim = 0 },
		func(p *Profile) { p.MultiHot = nil },
		func(p *Profile) { p.PositiveRate = 0 },
		func(p *Profile) { p.PositiveRate = 1 },
		func(p *Profile) { p.ZipfS = 0 },
		func(p *Profile) { p.MultiHot[0] = 0 },
	}
	for i, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := testProfile()
	g1 := MustNewGenerator(p, 99)
	g2 := MustNewGenerator(p, 99)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Label != b.Label {
			t.Fatal("same seed must give same labels")
		}
		for t1 := range a.Sparse {
			for h := range a.Sparse[t1] {
				if a.Sparse[t1][h] != b.Sparse[t1][h] {
					t.Fatal("same seed must give same ids")
				}
			}
		}
	}
}

func TestGeneratorSampleShape(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 1)
	s := g.Next()
	if len(s.Dense) != p.NumDense {
		t.Fatalf("dense len %d, want %d", len(s.Dense), p.NumDense)
	}
	if len(s.Sparse) != p.NumTables {
		t.Fatalf("sparse tables %d, want %d", len(s.Sparse), p.NumTables)
	}
	for ti, ids := range s.Sparse {
		if len(ids) != p.MultiHot[ti] {
			t.Fatalf("table %d hot %d, want %d", ti, len(ids), p.MultiHot[ti])
		}
		for _, id := range ids {
			if id < 0 || int(id) >= p.TableSize {
				t.Fatalf("id %d out of range", id)
			}
		}
	}
	if s.Label != 0 && s.Label != 1 {
		t.Fatalf("label %d", s.Label)
	}
}

func TestGeneratorPositiveRateCalibration(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 7)
	n := 20000
	pos := 0
	for i := 0; i < n; i++ {
		pos += g.Next().Label
	}
	rate := float64(pos) / float64(n)
	if rate < p.PositiveRate*0.5 || rate > p.PositiveRate*2.0 {
		t.Fatalf("positive rate %v too far from target %v", rate, p.PositiveRate)
	}
}

func TestGeneratorDrift(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 3)
	before := g.ContextSnapshot()
	g.Advance(4 * 3600) // 4 virtual hours
	after := g.ContextSnapshot()
	dot := tensor.Dot(before, after)
	if dot > 0.999 {
		t.Fatalf("context did not drift after 4h: cos=%v", dot)
	}
	// Unit length preserved.
	if math.Abs(tensor.Norm2(after)-1) > 1e-9 {
		t.Fatalf("context norm %v != 1", tensor.Norm2(after))
	}
	// No drift when dt <= 0.
	snap := g.ContextSnapshot()
	g.Advance(0)
	g.Advance(-5)
	for i, v := range g.ContextSnapshot() {
		if v != snap[i] {
			t.Fatal("Advance with dt<=0 must be a no-op")
		}
	}
}

func TestGeneratorDriftDegradesStaleScores(t *testing.T) {
	// A proxy model frozen at t=0 (the ground-truth at that instant) must
	// predict worse after substantial drift. This is the core property that
	// makes freshness experiments meaningful.
	p := testProfile()
	p.DriftRate = 0.8
	g := MustNewGenerator(p, 5)
	frozen := g.ContextSnapshot()

	score := func(ctx []float64, n int) float64 {
		scores := make([]float64, 0, n)
		labels := make([]int, 0, n)
		for i := 0; i < n; i++ {
			s := g.Next()
			// Score with the frozen context using the generator's own hidden
			// tables (oracle features, frozen preference direction).
			logit := 0.0
			for ti, ids := range s.Sparse {
				pooled := make([]float64, 8)
				for _, id := range ids {
					tensor.Axpy(1/float64(len(ids)), g.gTables[ti].Row(int(id)), pooled)
				}
				logit += tensor.Dot(pooled, ctx)
			}
			scores = append(scores, logit)
			labels = append(labels, s.Label)
		}
		return metrics.AUC(scores, labels)
	}

	aucFresh := score(frozen, 4000)
	g.Advance(12 * 3600) // 12 virtual hours of drift
	aucStale := score(frozen, 4000)
	if aucStale >= aucFresh-0.02 {
		t.Fatalf("stale scoring should degrade: fresh=%v stale=%v", aucFresh, aucStale)
	}
}

func TestGeneratorZipfSkewInAccesses(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 11)
	for i := 0; i < 20000; i++ {
		g.Next()
	}
	counts := g.AccessCounts()[0]
	share := metrics.TopShareCDF(counts, 0.10)
	if share < 0.5 {
		t.Fatalf("top-10%% access share %v too low", share)
	}
	g.ResetAccessCounts()
	for _, c := range g.AccessCounts()[0] {
		if c != 0 {
			t.Fatal("ResetAccessCounts did not zero counts")
		}
	}
}

func TestGeneratorBatch(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 13)
	batch := g.Batch(10, 60)
	if len(batch) != 10 {
		t.Fatalf("batch len %d", len(batch))
	}
	if math.Abs(g.Now()-60) > 1e-9 {
		t.Fatalf("batch should advance 60s, now=%v", g.Now())
	}
	if g.Batch(0, 10) != nil {
		t.Fatal("empty batch should be nil")
	}
	if g.Emitted() != 10 {
		t.Fatalf("emitted = %d", g.Emitted())
	}
}

func TestDiurnalLoadFactor(t *testing.T) {
	trough := DiurnalLoadFactor(4)
	peak := DiurnalLoadFactor(21)
	if peak <= trough*1.5 {
		t.Fatalf("diurnal curve flat: trough %v peak %v", trough, peak)
	}
	// Periodicity and positivity.
	for h := 0.0; h < 24; h += 0.5 {
		v := DiurnalLoadFactor(h)
		if v <= 0 {
			t.Fatalf("load factor must be positive at %v: %v", h, v)
		}
		if math.Abs(DiurnalLoadFactor(h+24)-v) > 1e-9 {
			t.Fatalf("load factor not 24h-periodic at %v", h)
		}
		if math.Abs(DiurnalLoadFactor(h-24)-v) > 1e-9 {
			t.Fatalf("negative-hour wrap broken at %v", h)
		}
	}
}

func TestRequestRateAt(t *testing.T) {
	p := testProfile()
	g := MustNewGenerator(p, 17)
	base := float64(p.RequestsPer5Min) / 300
	r := g.RequestRateAt(21 * 3600)
	if r < base*0.5 || r > base*2.5 {
		t.Fatalf("request rate %v outside plausible band around %v", r, base)
	}
}

func TestNewGeneratorRejectsInvalid(t *testing.T) {
	p := testProfile()
	p.NumTables = 0
	if _, err := NewGenerator(p, 1); err == nil {
		t.Fatal("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewGenerator should panic on invalid profile")
		}
	}()
	MustNewGenerator(p, 1)
}

// Property: generated ids are always within table bounds for arbitrary seeds.
func TestPropertyGeneratorBounds(t *testing.T) {
	p := testProfile()
	f := func(seed uint64) bool {
		g := MustNewGenerator(p, seed)
		for i := 0; i < 100; i++ {
			s := g.Next()
			for ti, ids := range s.Sparse {
				_ = ti
				for _, id := range ids {
					if id < 0 || int(id) >= p.TableSize {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
