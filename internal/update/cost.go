// Package update implements the model-update strategies the paper compares
// (§V-A): NoUpdate, DeltaUpdate (industry streaming practice), QuickUpdate
// (top-α% magnitude filtering, NSDI'24), and LiveUpdate (inference-side LoRA
// training). It provides both the paper-scale cost model behind Figs 8/14
// and the laptop-scale accuracy harness behind Table III / Figs 3b/15.
package update

import (
	"fmt"
	"math"

	"liveupdate/internal/trace"
)

// Kind enumerates the compared strategies.
type Kind int

// The strategy kinds of paper §V-A.
const (
	NoUpdate Kind = iota
	DeltaUpdate
	QuickUpdate
	LiveUpdate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NoUpdate:
		return "NoUpdate"
	case DeltaUpdate:
		return "DeltaUpdate"
	case QuickUpdate:
		return "QuickUpdate"
	case LiveUpdate:
		return "LiveUpdate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// CostModel computes paper-scale update costs on the virtual timeline. It
// substitutes arithmetic-on-50TB for the authors' testbed: transfer costs
// follow bandwidth, LiveUpdate costs follow local CPU training throughput.
type CostModel struct {
	Profile trace.Profile

	// BandwidthBps is the inter-cluster link bandwidth (paper: 100 GbE).
	BandwidthBps float64
	// QuickAlpha is QuickUpdate's parameter sampling rate (paper: 5-10%).
	QuickAlpha float64
	// CPUTrainBps is the co-located trainer's data-processing throughput:
	// how fast idle inference CPUs consume cached training bytes.
	CPUTrainBps float64
	// BaseLatency is the per-transfer fixed cost (version negotiation etc.).
	BaseLatency float64
}

// DefaultCostModel returns the paper's evaluation constants for a profile:
// 100 GbE, 5% QuickUpdate sampling, and a trainer throughput calibrated so
// LiveUpdate's hourly training cost lands in the paper's 3-5 minute band.
func DefaultCostModel(p trace.Profile) CostModel {
	return CostModel{
		Profile:      p,
		BandwidthBps: 100e9 / 8,
		QuickAlpha:   0.05,
		CPUTrainBps:  1.6e9,
		BaseLatency:  2.0,
	}
}

// dirtyRatioForWindow scales the profile's 10-minute update ratio to an
// arbitrary window. Row-update arrival is strongly sublinear in time (hot
// rows are re-touched constantly), modeled as ratio(t) = r10 · (t/600)^0.35,
// capped at 1. The exponent reproduces the concave growth of paper Fig 3a
// and DeltaUpdate's >60-minute hourly cost at 5-minute frequency (Fig 14).
func (cm CostModel) dirtyRatioForWindow(windowSec float64) float64 {
	r := cm.Profile.UpdateRatio10Min * math.Pow(windowSec/600, 0.35)
	if r > 1 {
		r = 1
	}
	return r
}

// DeltaBytes returns the bytes a DeltaUpdate sync ships after windowSec of
// training: the dirty fraction of the full EMT.
func (cm CostModel) DeltaBytes(windowSec float64) int64 {
	return int64(cm.dirtyRatioForWindow(windowSec) * float64(cm.Profile.PaperEMTBytes))
}

// QuickBytes returns the bytes a QuickUpdate sync ships: the top-α fraction
// of parameters (α of the full table, per the paper's 5-10% sampling).
func (cm CostModel) QuickBytes() int64 {
	return int64(cm.QuickAlpha * float64(cm.Profile.PaperEMTBytes))
}

// TransferSeconds converts a payload to wire time on the inter-cluster link.
func (cm CostModel) TransferSeconds(bytes int64) float64 {
	return cm.BaseLatency + float64(bytes)/cm.BandwidthBps
}

// LiveTrainSeconds returns LiveUpdate's local cost for one window: the time
// to train on the window's cached interaction data using idle CPU capacity.
// No network transfer is involved.
func (cm CostModel) LiveTrainSeconds(windowSec float64) float64 {
	bytesPerWindow := float64(cm.Profile.TrainBytesPer5Min) * windowSec / 300
	return bytesPerWindow / cm.CPUTrainBps
}

// UpdateCost returns the cost in seconds of a single update under the given
// strategy with the given update window.
func (cm CostModel) UpdateCost(k Kind, windowSec float64) float64 {
	switch k {
	case NoUpdate:
		return 0
	case DeltaUpdate:
		return cm.TransferSeconds(cm.DeltaBytes(windowSec))
	case QuickUpdate:
		return cm.TransferSeconds(cm.QuickBytes())
	case LiveUpdate:
		return cm.LiveTrainSeconds(windowSec)
	default:
		panic(fmt.Sprintf("update: unknown kind %d", k))
	}
}

// HourlyCost returns the total update cost accumulated over one hour of
// operation at the given update interval — the quantity plotted in Fig 14.
func (cm CostModel) HourlyCost(k Kind, windowSec float64) float64 {
	if k == NoUpdate {
		return 0
	}
	updates := math.Floor(3600 / windowSec)
	return updates * cm.UpdateCost(k, windowSec)
}

// VersionEvent is one model-version activation in a Fig 8 timeline.
type VersionEvent struct {
	Time    float64 // seconds from hour start when the version goes live
	Kind    string  // "full" or "lora" or "delta"
	Version int
}

// Timeline reproduces Fig 8: the sequence of model versions each strategy
// activates over horizonSec, assuming back-to-back updates (each update
// starts when the previous finishes, plus the strategy's update window gate).
// LiveUpdate and QuickUpdate additionally place an hourly full update.
func (cm CostModel) Timeline(k Kind, windowSec, horizonSec float64) []VersionEvent {
	var events []VersionEvent
	switch k {
	case NoUpdate:
		return nil
	case DeltaUpdate:
		cost := cm.UpdateCost(DeltaUpdate, windowSec)
		t := cost // first update completes after one transfer
		v := 1
		for t <= horizonSec {
			events = append(events, VersionEvent{Time: t, Kind: "full", Version: v})
			step := math.Max(cost, windowSec)
			t += step
			v++
		}
	case QuickUpdate, LiveUpdate:
		cost := cm.UpdateCost(k, windowSec)
		kind := "delta"
		gate := windowSec
		if k == LiveUpdate {
			kind = "lora"
			// LiveUpdate trains continuously on streaming local data, so it
			// can version at sub-window cadence; only half a window of fresh
			// samples is needed per LoRA version (paper Fig 8: 3-minute
			// cadence vs QuickUpdate's 6).
			gate = windowSec / 2
		}
		v := 1
		t := cost
		for t <= horizonSec {
			events = append(events, VersionEvent{Time: t, Kind: kind, Version: v})
			t += math.Max(cost, gate)
			v++
		}
		// Hourly full updates to bound drift (paper Fig 8).
		full := cm.TransferSeconds(cm.Profile.PaperEMTBytes)
		for h := 3600.0; h <= horizonSec; h += 3600 {
			events = append(events, VersionEvent{Time: h + full, Kind: "full", Version: v})
			v++
		}
	}
	return events
}
