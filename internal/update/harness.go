package update

import (
	"fmt"
	"sort"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/emt"
	"liveupdate/internal/lora"
	"liveupdate/internal/tensor"
	"liveupdate/internal/trace"
)

// HarnessConfig configures the laptop-scale accuracy comparison (the real
// training/serving loop behind Table III and Figs 3b/15).
type HarnessConfig struct {
	Profile trace.Profile
	Seed    uint64

	Kind       Kind
	QuickAlpha float64 // QuickUpdate sampling rate (e.g. 0.05)

	WindowSec        float64 // evaluation/training step (paper: 300 s)
	UpdateEvery      int     // windows between strategy syncs (2 → 10 min)
	FullSyncEvery    int     // windows between full syncs (12 → hourly); 0 = never
	SamplesPerWindow int

	DenseLR float64
	EmbLR   float64
	Batch   int

	// LiveEmbLR is the co-located LoRA trainer's learning rate. LoRA's
	// parameterized update moves ∆W slower than direct SGD near the B=0
	// initialization, so it wants a higher rate; 0 means 2×EmbLR.
	LiveEmbLR float64

	// SyncDelayWindows models the inter-cluster transfer delay of
	// DeltaUpdate/QuickUpdate: the state installed at a sync is the training
	// cluster's snapshot from this many windows ago (a TB-scale delta takes
	// minutes on 100 GbE — paper Figs 8/14). LiveUpdate has no transfer and
	// ignores this. Negative disables the pipeline (instant sync).
	SyncDelayWindows int

	// TrainerSampleFrac is the fraction of each window's interactions the
	// remote training cluster ingests. Production pipelines feed the data
	// lake a *sample* of global traffic (paper Fig 2: "1% sampling"), while
	// the inference node's ring buffer holds every request it served — a
	// data advantage for local adaptation. 0 means 0.5.
	TrainerSampleFrac float64

	// LoRA controls LiveUpdate variants. Rank 0 = dynamic (paper default);
	// a positive FixedRank freezes the adapter at that rank.
	FixedRank int
	LoRAAlpha float64 // variance threshold α; 0 → 0.8

	// LiveEpochs is how many passes the co-located trainer makes over each
	// window's cached data (idle CPUs re-sample the ring buffer
	// continuously; paper Fig 7's update path). 0 means 2.
	LiveEpochs int
}

// DefaultHarnessConfig returns the paper's evaluation schedule: 5-minute
// windows, 10-minute updates, hourly full sync. The transfer-delay default
// follows Fig 14's payload arithmetic: a full delta takes roughly two
// windows to land, QuickUpdate's filtered delta one.
func DefaultHarnessConfig(p trace.Profile, k Kind, seed uint64) HarnessConfig {
	delay := 1
	if k == DeltaUpdate {
		delay = 2
	}
	return HarnessConfig{
		Profile:          p,
		Seed:             seed,
		Kind:             k,
		QuickAlpha:       0.05,
		WindowSec:        300,
		UpdateEvery:      2,
		FullSyncEvery:    12,
		SamplesPerWindow: 600,
		DenseLR:          0.05,
		EmbLR:            0.05,
		Batch:            64,
		SyncDelayWindows: delay,
	}
}

// Validate reports configuration errors.
func (c HarnessConfig) Validate() error {
	if err := c.Profile.Validate(); err != nil {
		return err
	}
	switch {
	case c.WindowSec <= 0:
		return fmt.Errorf("update: WindowSec must be positive")
	case c.UpdateEvery <= 0:
		return fmt.Errorf("update: UpdateEvery must be positive")
	case c.SamplesPerWindow <= 0:
		return fmt.Errorf("update: SamplesPerWindow must be positive")
	case c.Kind == QuickUpdate && (c.QuickAlpha <= 0 || c.QuickAlpha > 1):
		return fmt.Errorf("update: QuickAlpha must be in (0,1]")
	}
	return nil
}

// Harness runs one strategy over a drifting stream: a training-cluster model
// stays continuously fresh, an inference replica receives state per the
// strategy, and test-then-train evaluation produces the per-window AUC
// series of Figs 3b/15.
type Harness struct {
	Cfg HarnessConfig

	gen *trace.Generator

	// Training cluster: always trains on the freshest data.
	trainModel *dlrm.Model
	trainEmb   *dlrm.BaseEmbeddings
	trainOpt   dlrm.Optimizer

	// Inference replica.
	infModel *dlrm.Model
	infGroup *emt.Group
	infBase  *dlrm.BaseEmbeddings
	loraSet  *lora.Set // LiveUpdate only
	infOpt   dlrm.Optimizer

	window        int
	bytes         int64
	syncs         int
	fullSyncs     int
	aucSeries     []float64
	updateMarkers []int // window indices where a sync landed

	// history holds per-window snapshots of the training cluster, newest
	// last, for the transfer-delay pipeline (SyncDelayWindows).
	history []clusterSnapshot
}

// clusterSnapshot is the training cluster's state at one window boundary.
type clusterSnapshot struct {
	model *dlrm.Model
	group *emt.Group
}

// NewHarness builds the two-cluster setup with identical initial weights
// (paper: "all systems start from identical model version 0").
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gen, err := trace.NewGenerator(cfg.Profile, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0xdeadbeef)
	mcfg := dlrm.ConfigForProfile(cfg.Profile)
	trainModel, err := dlrm.NewModel(mcfg, rng)
	if err != nil {
		return nil, err
	}
	trainGroup := emt.NewGroup(cfg.Profile.NumTables, cfg.Profile.TableSize,
		cfg.Profile.EmbeddingDim, tensor.NewRNG(cfg.Seed^0xabc))

	h := &Harness{
		Cfg:        cfg,
		gen:        gen,
		trainModel: trainModel,
		trainEmb:   &dlrm.BaseEmbeddings{Group: trainGroup},
		trainOpt:   dlrm.SGD{LR: cfg.DenseLR},
		infModel:   trainModel.Clone(),
		infGroup:   trainGroup.Clone(),
		infOpt:     dlrm.SGD{LR: cfg.DenseLR},
	}
	h.infBase = &dlrm.BaseEmbeddings{Group: h.infGroup}
	if cfg.Kind == LiveUpdate {
		lcfg := lora.DefaultConfig(cfg.Profile.TableSize, cfg.Profile.EmbeddingDim)
		lcfg.Seed = cfg.Seed
		lcfg.AdaptInterval = 64
		if cfg.LoRAAlpha > 0 {
			lcfg.Alpha = cfg.LoRAAlpha
		}
		if cfg.FixedRank > 0 {
			lcfg.InitialRank = cfg.FixedRank
			lcfg.DisableRankAdapt = true
			if lcfg.MaxRank < cfg.FixedRank {
				lcfg.MaxRank = cfg.FixedRank
			}
		}
		h.loraSet, err = lora.NewSet(h.infGroup, lcfg)
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// MustNewHarness panics on configuration errors.
func MustNewHarness(cfg HarnessConfig) *Harness {
	h, err := NewHarness(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// infSource returns the inference-side EmbeddingSource for the strategy.
func (h *Harness) infSource() dlrm.EmbeddingSource {
	if h.Cfg.Kind == LiveUpdate {
		return h.loraSet
	}
	return h.infBase
}

// Pretrain warms both clusters on `windows` windows of pre-stream data so
// evaluation starts from a trained Day-1 checkpoint (paper §V-C).
func (h *Harness) Pretrain(windows int) {
	tr := &dlrm.Trainer{Model: h.trainModel, Emb: h.trainEmb, Opt: h.trainOpt, EmbLR: h.Cfg.EmbLR}
	for w := 0; w < windows; w++ {
		samples := h.gen.Batch(h.Cfg.SamplesPerWindow, h.Cfg.WindowSec)
		tr.TrainEpochs(samples, h.Cfg.Batch, 1)
	}
	// Checkpoint: inference starts identical to the trainer, and the
	// transfer pipeline's history starts from this checkpoint.
	h.forceFullSync(false)
	h.history = nil
	h.pushSnapshot()
}

// Step executes one evaluation window: test-then-train on fresh samples,
// then apply the strategy's scheduled syncs. It returns the window's AUC
// measured *before* any model state changed (the staleness the user saw).
func (h *Harness) Step() float64 {
	cfg := h.Cfg
	samples := h.gen.Batch(cfg.SamplesPerWindow, cfg.WindowSec)

	auc := dlrm.EvaluateAUC(h.infModel, h.infSource(), samples)
	h.aucSeries = append(h.aucSeries, auc)

	// Training cluster learns from its sampled share of the fresh window.
	tr := &dlrm.Trainer{Model: h.trainModel, Emb: h.trainEmb, Opt: h.trainOpt, EmbLR: cfg.EmbLR}
	tr.TrainEpochs(h.trainerShare(samples), cfg.Batch, 1)
	h.pushSnapshot()

	// LiveUpdate's co-located trainer learns locally from the same window
	// (its ring buffer holds exactly the requests it served).
	if cfg.Kind == LiveUpdate {
		lr := cfg.LiveEmbLR
		if lr == 0 {
			lr = 2 * cfg.EmbLR
		}
		epochs := cfg.LiveEpochs
		if epochs == 0 {
			epochs = 2
		}
		lt := &dlrm.Trainer{Model: h.infModel, Emb: h.loraSet, Opt: noDenseOpt{}, EmbLR: lr}
		lt.TrainEpochs(samples, cfg.Batch, epochs)
	}

	h.window++
	if cfg.FullSyncEvery > 0 && h.window%cfg.FullSyncEvery == 0 {
		h.fullSync()
	} else if h.window%cfg.UpdateEvery == 0 {
		h.sync()
	}
	return auc
}

// Run executes n windows and returns the result summary.
func (h *Harness) Run(n int) Result {
	for i := 0; i < n; i++ {
		h.Step()
	}
	return h.Result()
}

// noDenseOpt freezes dense layers during local LoRA training: the paper's
// online update path trains only the low-rank embedding factors.
type noDenseOpt struct{}

func (noDenseOpt) Step(m *dlrm.MLP, batchSize int) { m.ZeroGrad() }

// sync applies the strategy's periodic update.
func (h *Harness) sync() {
	switch h.Cfg.Kind {
	case NoUpdate, LiveUpdate:
		// NoUpdate never syncs; LiveUpdate's periodic freshness is local
		// training, already applied in Step.
		return
	case DeltaUpdate:
		h.syncDelta()
	case QuickUpdate:
		h.syncQuick()
	}
	h.syncs++
	h.updateMarkers = append(h.updateMarkers, h.window)
}

// trainerShare returns the subset of a window the remote training cluster
// ingests (every k-th sample per TrainerSampleFrac). During Pretrain the
// full window is used: the Day-1 checkpoint is trained offline on the lake.
func (h *Harness) trainerShare(samples []trace.Sample) []trace.Sample {
	frac := h.Cfg.TrainerSampleFrac
	if frac == 0 {
		frac = 0.5
	}
	if frac >= 1 || len(samples) == 0 {
		return samples
	}
	stride := int(1 / frac)
	if stride < 1 {
		stride = 1
	}
	out := make([]trace.Sample, 0, len(samples)/stride+1)
	for i := 0; i < len(samples); i += stride {
		out = append(out, samples[i])
	}
	return out
}

// pushSnapshot records the training cluster's state for the transfer-delay
// pipeline, retaining only what the configured delay needs.
func (h *Harness) pushSnapshot() {
	keep := h.Cfg.SyncDelayWindows + 1
	if keep < 1 {
		keep = 1
	}
	h.history = append(h.history, clusterSnapshot{
		model: h.trainModel.Clone(),
		group: h.trainEmb.Group.Clone(),
	})
	if len(h.history) > keep {
		h.history = h.history[len(h.history)-keep:]
	}
}

// syncSource returns the training-cluster state a sync installs: the
// snapshot from SyncDelayWindows ago (what has finished transferring by
// now), or the oldest available during warmup.
func (h *Harness) syncSource() clusterSnapshot {
	if h.Cfg.SyncDelayWindows <= 0 || len(h.history) == 0 {
		return clusterSnapshot{model: h.trainModel, group: h.trainEmb.Group}
	}
	idx := len(h.history) - 1 - h.Cfg.SyncDelayWindows
	if idx < 0 {
		idx = 0
	}
	return h.history[idx]
}

// changedRows lists the rows of table ti whose source values differ from
// the inference replica (the delta payload).
func (h *Harness) changedRows(src clusterSnapshot, ti int) []emt.RowDelta {
	inf := h.infGroup.Tables[ti]
	st := src.group.Tables[ti]
	var out []emt.RowDelta
	for id := int32(0); int(id) < st.Rows(); id++ {
		srow := st.PeekRow(id)
		irow := inf.PeekRow(id)
		for i := range srow {
			if srow[i] != irow[i] {
				out = append(out, emt.RowDelta{ID: id, Values: append([]float64(nil), srow...)})
				break
			}
		}
	}
	return out
}

// syncDelta ships every changed row plus dense weights (industry streaming
// update, paper Fig 2). The payload reflects the delayed snapshot: by the
// time a TB-scale delta lands, it is already SyncDelayWindows old.
func (h *Harness) syncDelta() {
	src := h.syncSource()
	for ti, tt := range h.infGroup.Tables {
		deltas := h.changedRows(src, ti)
		tt.ApplyDeltas(deltas)
		h.bytes += int64(len(deltas)) * int64(tt.Dim) * 8
	}
	h.infModel.CopyWeightsFrom(src.model)
	h.bytes += int64(src.model.DenseParamCount()) * 8
}

// syncQuick ships only the top-α fraction of changed rows by update
// magnitude (QuickUpdate's gradient-magnitude heuristic). Small-magnitude
// but semantically fresh rows are exactly what this heuristic drops
// (paper §II-C); they remain pending for later syncs.
func (h *Harness) syncQuick() {
	src := h.syncSource()
	type scored struct {
		table int
		delta emt.RowDelta
		mag   float64
	}
	var all []scored
	for ti := range h.infGroup.Tables {
		inf := h.infGroup.Tables[ti]
		for _, d := range h.changedRows(src, ti) {
			infRow := inf.PeekRow(d.ID)
			mag := 0.0
			for i, v := range d.Values {
				diff := v - infRow[i]
				mag += diff * diff
			}
			all = append(all, scored{table: ti, delta: d, mag: mag})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mag > all[j].mag })
	keep := int(h.Cfg.QuickAlpha * float64(h.Cfg.Profile.TotalEmbeddingRows()))
	if keep > len(all) {
		keep = len(all)
	}
	for i := 0; i < keep; i++ {
		s := all[i]
		h.infGroup.Tables[s.table].ApplyDeltas([]emt.RowDelta{s.delta})
		h.bytes += int64(len(s.delta.Values)) * 8
	}
	h.infModel.CopyWeightsFrom(src.model)
	h.bytes += int64(src.model.DenseParamCount()) * 8
}

// fullSync installs the training cluster's complete state on the inference
// replica (hourly drift bound for QuickUpdate/LiveUpdate; DeltaUpdate's
// periodic sync already ships all changes).
func (h *Harness) fullSync() {
	switch h.Cfg.Kind {
	case NoUpdate:
		return
	case DeltaUpdate:
		h.syncDelta()
		h.syncs++
		h.updateMarkers = append(h.updateMarkers, h.window)
		return
	}
	h.forceFullSync(true)
	h.fullSyncs++
	h.updateMarkers = append(h.updateMarkers, h.window)
}

// forceFullSync copies everything train → inference. When countBytes is
// true the full model size is charged to the strategy.
func (h *Harness) forceFullSync(countBytes bool) {
	h.infGroup.CopyWeightsFrom(h.trainEmb.Group)
	h.infModel.CopyWeightsFrom(h.trainModel)
	h.trainEmb.Group.ResetDirty()
	if h.loraSet != nil {
		h.loraSet.ResetAdapters()
	}
	if countBytes {
		h.bytes += h.trainEmb.Group.SizeBytes() + int64(h.trainModel.DenseParamCount())*8
	}
}

// Result summarizes a harness run.
type Result struct {
	Kind          Kind
	AUCSeries     []float64
	MeanAUC       float64
	Bytes         int64
	Syncs         int
	FullSyncs     int
	UpdateMarkers []int
	LoRAOverhead  float64 // adapter bytes / EMT bytes at end (LiveUpdate)
}

// Result returns the current summary.
func (h *Harness) Result() Result {
	mean := 0.0
	for _, a := range h.aucSeries {
		mean += a
	}
	if len(h.aucSeries) > 0 {
		mean /= float64(len(h.aucSeries))
	}
	r := Result{
		Kind:          h.Cfg.Kind,
		AUCSeries:     append([]float64(nil), h.aucSeries...),
		MeanAUC:       mean,
		Bytes:         h.bytes,
		Syncs:         h.syncs,
		FullSyncs:     h.fullSyncs,
		UpdateMarkers: append([]int(nil), h.updateMarkers...),
	}
	if h.loraSet != nil {
		r.LoRAOverhead = h.loraSet.OverheadRatio()
	}
	return r
}

// LoRASet exposes the LiveUpdate adapter set (nil for other strategies).
func (h *Harness) LoRASet() *lora.Set { return h.loraSet }

// Generator exposes the stream generator (e.g. for access-distribution
// statistics after a run).
func (h *Harness) Generator() *trace.Generator { return h.gen }

// TrainerGroup exposes the training cluster's tables (Fig 3a measurements).
func (h *Harness) TrainerGroup() *emt.Group { return h.trainEmb.Group }

// SetDenseOpt overrides the dense-layer optimizer on both clusters (e.g.
// Adagrad, the production choice, which stabilizes long streaming runs).
func (h *Harness) SetDenseOpt(opt dlrm.Optimizer) {
	h.trainOpt = opt
	h.infOpt = opt
}
