package update

import (
	"math"
	"testing"

	"liveupdate/internal/dlrm"
	"liveupdate/internal/trace"
)

func costModel(name string) CostModel {
	return DefaultCostModel(trace.Profiles()[name])
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		NoUpdate: "NoUpdate", DeltaUpdate: "DeltaUpdate",
		QuickUpdate: "QuickUpdate", LiveUpdate: "LiveUpdate", Kind(9): "Kind(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d → %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestDirtyRatioScaling(t *testing.T) {
	cm := costModel("bd-tb")
	r10 := cm.dirtyRatioForWindow(600)
	r30 := cm.dirtyRatioForWindow(1800)
	r60 := cm.dirtyRatioForWindow(3600)
	if math.Abs(r10-cm.Profile.UpdateRatio10Min) > 1e-12 {
		t.Fatalf("10-min ratio %v != profile %v", r10, cm.Profile.UpdateRatio10Min)
	}
	// Concave growth: r30 < 3·r10, r60 < 6·r10, but monotone (Fig 3a shape).
	if !(r10 < r30 && r30 < r60) {
		t.Fatalf("ratios not monotone: %v %v %v", r10, r30, r60)
	}
	if r30 >= 3*r10 || r60 >= 6*r10 {
		t.Fatalf("ratios must grow sublinearly: %v %v %v", r10, r30, r60)
	}
	// Cap at 1.
	if cm.dirtyRatioForWindow(1e12) != 1 {
		t.Fatal("ratio must cap at 1")
	}
}

func TestUpdateCostOrdering(t *testing.T) {
	// Paper Fig 14: at high frequency (5-min), LiveUpdate < QuickUpdate <
	// DeltaUpdate, and NoUpdate is free.
	cm := costModel("bd-tb")
	w := 300.0
	no := cm.UpdateCost(NoUpdate, w)
	live := cm.UpdateCost(LiveUpdate, w)
	quick := cm.UpdateCost(QuickUpdate, w)
	delta := cm.UpdateCost(DeltaUpdate, w)
	if no != 0 {
		t.Fatalf("NoUpdate cost %v", no)
	}
	if !(live < quick && quick < delta) {
		t.Fatalf("cost order violated: live %v quick %v delta %v", live, quick, delta)
	}
}

func TestHourlyCostShape(t *testing.T) {
	cm := costModel("avazu-tb")
	// DeltaUpdate at 5-min frequency must exceed the hour (paper: >60 min on
	// Avazu-TB).
	if h := cm.HourlyCost(DeltaUpdate, 300); h < 3600 {
		t.Fatalf("Delta hourly %v s, paper says > 1 hour", h)
	}
	// LiveUpdate hourly cost in the paper's 3-5 minute band.
	if h := cm.HourlyCost(LiveUpdate, 300); h < 120 || h > 360 {
		t.Fatalf("LiveUpdate hourly %v s outside 2-6 min band", h)
	}
	// LiveUpdate reduces cost ≥2x vs QuickUpdate at 5-min frequency.
	q := cm.HourlyCost(QuickUpdate, 300)
	l := cm.HourlyCost(LiveUpdate, 300)
	if q/l < 2 {
		t.Fatalf("LiveUpdate should be ≥2x cheaper: quick %v live %v", q, l)
	}
	// LiveUpdate's cost is roughly frequency-independent; Delta's is not.
	l20 := cm.HourlyCost(LiveUpdate, 1200)
	if math.Abs(l-l20)/l > 0.25 {
		t.Fatalf("LiveUpdate cost should not depend on frequency: %v vs %v", l, l20)
	}
	d5, d20 := cm.HourlyCost(DeltaUpdate, 300), cm.HourlyCost(DeltaUpdate, 1200)
	if d5 <= d20 {
		t.Fatalf("Delta cost must grow with frequency: %v vs %v", d5, d20)
	}
	if cm.HourlyCost(NoUpdate, 300) != 0 {
		t.Fatal("NoUpdate hourly must be 0")
	}
}

func TestQuickBytesAndTransfer(t *testing.T) {
	cm := costModel("bd-tb")
	want := int64(0.05 * float64(cm.Profile.PaperEMTBytes))
	if got := cm.QuickBytes(); got != want {
		t.Fatalf("quick bytes %d, want %d", got, want)
	}
	// 2.5 TB over 100 GbE ≈ 220 s + base latency.
	secs := cm.TransferSeconds(cm.QuickBytes())
	if secs < 180 || secs > 300 {
		t.Fatalf("quick transfer %v s implausible", secs)
	}
}

func TestTimelineFig8Shape(t *testing.T) {
	cm := costModel("bd-tb")
	delta := cm.Timeline(DeltaUpdate, 300, 3600)
	quick := cm.Timeline(QuickUpdate, 300, 3600)
	live := cm.Timeline(LiveUpdate, 300, 3600)
	if cm.Timeline(NoUpdate, 300, 3600) != nil {
		t.Fatal("NoUpdate timeline must be empty")
	}
	// LiveUpdate delivers the most versions (paper: most frequent updates).
	if !(len(live) > len(quick) && len(quick) >= len(delta)) {
		t.Fatalf("version counts: live %d quick %d delta %d", len(live), len(quick), len(delta))
	}
	// Events are time-ordered per kind and within the horizon.
	for _, events := range [][]VersionEvent{delta, quick} {
		last := 0.0
		for _, e := range events {
			if e.Time < last {
				t.Fatal("timeline not ordered")
			}
			last = e.Time
		}
	}
	// LiveUpdate's first version lands far earlier than DeltaUpdate's.
	if live[0].Time >= delta[0].Time {
		t.Fatalf("first live version %v not before first delta %v", live[0].Time, delta[0].Time)
	}
}

func harnessProfile() trace.Profile {
	p := trace.Profiles()["criteo"]
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	p.DriftRate = 0.8 // fast drift so staleness shows quickly in short tests
	return p
}

func quickHarnessConfig(k Kind) HarnessConfig {
	cfg := DefaultHarnessConfig(harnessProfile(), k, 42)
	cfg.SamplesPerWindow = 250
	cfg.FullSyncEvery = 8
	return cfg
}

func TestHarnessValidate(t *testing.T) {
	good := quickHarnessConfig(DeltaUpdate)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.WindowSec = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero window must fail")
	}
	bad = good
	bad.UpdateEvery = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero update interval must fail")
	}
	bad = quickHarnessConfig(QuickUpdate)
	bad.QuickAlpha = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("quick alpha 0 must fail")
	}
	if _, err := NewHarness(HarnessConfig{}); err == nil {
		t.Fatal("NewHarness must reject empty config")
	}
}

func TestHarnessDeltaTracksTrainer(t *testing.T) {
	cfg := quickHarnessConfig(DeltaUpdate)
	cfg.SyncDelayWindows = -1 // instant sync: replica must equal the trainer
	h := MustNewHarness(cfg)
	h.Pretrain(2)
	res := h.Run(4)
	if len(res.AUCSeries) != 4 {
		t.Fatalf("series %d", len(res.AUCSeries))
	}
	if res.Syncs == 0 {
		t.Fatal("delta must sync")
	}
	if res.Bytes <= 0 {
		t.Fatal("delta must ship bytes")
	}
	// After a delta sync, inference tables equal trainer tables.
	h.sync()
	for ti, tt := range h.TrainerGroup().Tables {
		inf := h.infGroup.Tables[ti]
		for id := int32(0); id < 20; id++ {
			a, b := tt.PeekRow(id), inf.PeekRow(id)
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("delta sync must converge replica to trainer")
				}
			}
		}
	}
}

func TestHarnessNoUpdateShipsNothing(t *testing.T) {
	h := MustNewHarness(quickHarnessConfig(NoUpdate))
	h.Pretrain(1)
	res := h.Run(4)
	if res.Bytes != 0 || res.Syncs != 0 || res.FullSyncs != 0 {
		t.Fatalf("NoUpdate must be free: %+v", res)
	}
}

func TestHarnessQuickShipsLessThanDelta(t *testing.T) {
	dh := MustNewHarness(quickHarnessConfig(DeltaUpdate))
	dh.Pretrain(2)
	dres := dh.Run(6)
	qcfg := quickHarnessConfig(QuickUpdate)
	qcfg.FullSyncEvery = 0 // isolate the periodic sync volume
	qh := MustNewHarness(qcfg)
	qh.Pretrain(2)
	qres := qh.Run(6)
	if qres.Bytes >= dres.Bytes {
		t.Fatalf("quick bytes %d must be below delta bytes %d", qres.Bytes, dres.Bytes)
	}
}

func TestHarnessLiveUpdateLocalTraining(t *testing.T) {
	cfg := quickHarnessConfig(LiveUpdate)
	cfg.FullSyncEvery = 0 // no full syncs: all freshness is local
	h := MustNewHarness(cfg)
	h.Pretrain(2)
	res := h.Run(4)
	if res.Bytes != 0 {
		t.Fatalf("pure-local LiveUpdate must ship nothing, shipped %d", res.Bytes)
	}
	if h.LoRASet() == nil {
		t.Fatal("LiveUpdate harness must have adapters")
	}
	active := 0
	for _, a := range h.LoRASet().Adapters {
		active += a.ActiveCount()
	}
	if active == 0 {
		t.Fatal("local training must populate LoRA tables")
	}
	if res.LoRAOverhead <= 0 {
		t.Fatal("overhead ratio must be positive")
	}
}

func TestHarnessFullSyncResetsLoRA(t *testing.T) {
	cfg := quickHarnessConfig(LiveUpdate)
	cfg.FullSyncEvery = 3
	h := MustNewHarness(cfg)
	h.Pretrain(1)
	h.Run(3) // window 3 triggers full sync
	res := h.Result()
	if res.FullSyncs != 1 {
		t.Fatalf("full syncs %d, want 1", res.FullSyncs)
	}
	for _, a := range h.LoRASet().Adapters {
		if a.ActiveCount() != 0 {
			t.Fatal("full sync must reset adapters")
		}
	}
	if res.Bytes <= 0 {
		t.Fatal("full sync must be charged")
	}
}

func TestStalenessHurtsAndUpdatesHelp(t *testing.T) {
	// The core Fig 3b property at harness level: NoUpdate's late-window AUC
	// falls below DeltaUpdate's.
	const windows = 10
	no := MustNewHarness(quickHarnessConfig(NoUpdate))
	no.Pretrain(3)
	nres := no.Run(windows)
	delta := MustNewHarness(quickHarnessConfig(DeltaUpdate))
	delta.Pretrain(3)
	dres := delta.Run(windows)
	lateNo := mean(nres.AUCSeries[windows/2:])
	lateDelta := mean(dres.AUCSeries[windows/2:])
	if lateDelta <= lateNo {
		t.Fatalf("updates must beat staleness: delta %v vs noupdate %v", lateDelta, lateNo)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestSyncDelayPipeline(t *testing.T) {
	// With a 1-window delay, a sync must install the snapshot from one
	// window ago, not the live trainer state.
	cfg := quickHarnessConfig(DeltaUpdate)
	cfg.UpdateEvery = 1
	cfg.FullSyncEvery = 0
	cfg.SyncDelayWindows = 1
	cfg.TrainerSampleFrac = 1
	h := MustNewHarness(cfg)
	h.Pretrain(1)
	h.Step() // window 1: trains, snapshots, syncs (delayed source = pretrain state)
	// After window 1's sync the replica should hold the state from *before*
	// window 1's training, i.e. differ from the live trainer.
	diff := false
	tt := h.TrainerGroup().Tables[0]
	inf := h.infGroup.Tables[0]
	for id := int32(0); int(id) < tt.Rows() && !diff; id++ {
		a, b := tt.PeekRow(id), inf.PeekRow(id)
		for i := range a {
			if a[i] != b[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("delayed sync must lag the live trainer")
	}
	// With delay disabled the replica converges to the trainer exactly.
	cfg.SyncDelayWindows = -1
	h2 := MustNewHarness(cfg)
	h2.Pretrain(1)
	h2.Step()
	tt2 := h2.TrainerGroup().Tables[0]
	inf2 := h2.infGroup.Tables[0]
	for id := int32(0); int(id) < tt2.Rows(); id++ {
		a, b := tt2.PeekRow(id), inf2.PeekRow(id)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("instant sync must match the live trainer")
			}
		}
	}
}

func TestTrainerSampleFraction(t *testing.T) {
	h := MustNewHarness(quickHarnessConfig(DeltaUpdate))
	samples := make([]trace.Sample, 100)
	h.Cfg.TrainerSampleFrac = 0.25
	if got := len(h.trainerShare(samples)); got != 25 {
		t.Fatalf("quarter share %d, want 25", got)
	}
	h.Cfg.TrainerSampleFrac = 1
	if got := len(h.trainerShare(samples)); got != 100 {
		t.Fatalf("full share %d, want 100", got)
	}
	h.Cfg.TrainerSampleFrac = 0 // default 0.5
	if got := len(h.trainerShare(samples)); got != 50 {
		t.Fatalf("default share %d, want 50", got)
	}
	if h.trainerShare(nil) != nil {
		t.Fatal("empty share must be nil")
	}
}

func TestDefaultDelayPerStrategy(t *testing.T) {
	p := harnessProfile()
	if d := DefaultHarnessConfig(p, DeltaUpdate, 1).SyncDelayWindows; d != 2 {
		t.Fatalf("delta delay %d, want 2 (Fig 14 payload arithmetic)", d)
	}
	if d := DefaultHarnessConfig(p, QuickUpdate, 1).SyncDelayWindows; d != 1 {
		t.Fatalf("quick delay %d, want 1", d)
	}
}

func TestSetDenseOpt(t *testing.T) {
	h := MustNewHarness(quickHarnessConfig(DeltaUpdate))
	h.SetDenseOpt(dlrmAdagrad())
	h.Pretrain(1)
	if got := h.Run(2); len(got.AUCSeries) != 2 {
		t.Fatalf("run with adagrad failed: %+v", got)
	}
}

func dlrmAdagrad() dlrm.Optimizer { return dlrm.Adagrad{LR: 0.05} }
