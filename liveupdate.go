// Package liveupdate is a from-scratch Go reproduction of "Near-Zero-Overhead
// Freshness for Recommendation Systems via Inference-Side Model Updates"
// (HPCA 2026). It provides:
//
//   - the LiveUpdate serving stack behind one Server interface: a single
//     co-located node (System) or a replica fleet with request routing and
//     periodic LoRA priority-merge synchronization (Cluster) — propagated,
//     by default, through a versioned asynchronous pipeline that never
//     blocks serving (see WithSyncMode). The fleet is elastic: replicas
//     join, leave, fail, and are replaced at runtime with checkpoint + LoRA
//     catch-up (ElasticServer, WithChaos, DriveConfig.Chaos);
//   - the baselines the paper compares against: NoUpdate, DeltaUpdate, and
//     QuickUpdate, behind a single comparison harness (Comparison);
//   - the evaluation suite: every table and figure of the paper's §V can be
//     regenerated with RunExperiment.
//
// The heavy machinery lives in internal/ packages (tensor math, DLRM,
// embedding tables, LoRA adapters, the replica fleet and its elastic
// membership controller (internal/fleet), the discrete-event cluster
// simulation, and the NUMA hardware model); this package re-exports the
// surface a downstream user needs.
//
// Quickstart — single node:
//
//	profile, _ := liveupdate.ProfileByName("criteo")
//	srv, err := liveupdate.New(liveupdate.WithProfile(profile), liveupdate.WithSeed(42))
//	if err != nil { ... }
//	gen := liveupdate.NewWorkload(profile, 42)
//	for i := 0; i < 10000; i++ {
//	    resp, err := srv.Serve(gen.Next())
//	    _ = resp.Prob; _ = err
//	}
//	st := srv.Stats()
//	fmt.Println("P99:", st.P99, "LoRA overhead:", st.MemoryOverhead)
//
// Scaling out is one option away — four replicas sharing a base checkpoint,
// embedding-locality routing, and a LoRA sync every 30 virtual seconds:
//
//	srv, err := liveupdate.New(
//	    liveupdate.WithProfile(profile),
//	    liveupdate.WithReplicas(4),
//	    liveupdate.WithRouter(liveupdate.HashRouter),
//	    liveupdate.WithSyncEvery(30*time.Second),
//	)
//
// Stats() on a Cluster returns the merged fleet view (true cross-replica
// P99, exact violation counts, sync payload accounting) with a per-replica
// breakdown in Stats.Replicas.
package liveupdate

import (
	"context"
	"fmt"
	"net"
	"time"

	"liveupdate/internal/cluster"
	"liveupdate/internal/collective"
	"liveupdate/internal/core"
	"liveupdate/internal/dlrm"
	"liveupdate/internal/driver"
	"liveupdate/internal/experiments"
	"liveupdate/internal/faultnet"
	"liveupdate/internal/fleet"
	"liveupdate/internal/netclient"
	"liveupdate/internal/netserve"
	"liveupdate/internal/numasim"
	"liveupdate/internal/obs"
	"liveupdate/internal/trace"
	"liveupdate/internal/update"
)

// Version identifies this reproduction release.
const Version = "2.7.0"

// Server is the unified serving abstraction: one request in, a scored
// response out, plus a consistent statistics snapshot. Both the single-node
// System and the multi-replica Cluster implement it, so serving loops,
// benchmarks, and the CLI scale from one node to a fleet unchanged.
//
// Both implementations are safe for concurrent callers: a System serializes
// requests on an internal lock, while a Cluster serves independent replicas
// in parallel and only barriers the fleet for priority-merge syncs. Use
// Drive to pump a workload through a Server from many goroutines with
// deterministic virtual-time results.
type Server interface {
	// Serve scores one request (and, on a LiveUpdate node, interleaves the
	// co-located training tick).
	Serve(Sample) (Response, error)
	// Stats snapshots serving, training, memory, and — for a fleet — sync
	// statistics.
	Stats() Stats
}

// Both serving topologies implement Server.
var (
	_ Server = (*System)(nil)
	_ Server = (*Cluster)(nil)
)

// ElasticServer is a Server whose replica fleet can change at runtime while
// it keeps serving: replicas can be scaled, failed, and replaced, with a
// joining replica caught up from a live donor (base-table checkpoint + full
// LoRA state, billed to the virtual sync clock). A Cluster implements it; a
// single-node System does not. Richer membership surgery (Join/Leave of
// specific slots, the live member view) lives on *Cluster directly.
type ElasticServer interface {
	Server
	// Scale grows or shrinks the active fleet to n replicas.
	Scale(n int) error
	// FailReplica kills the replica in a slot: it is excluded from routing
	// immediately, in-flight requests to its lane redirect, and its
	// statistics fold into the fleet totals.
	FailReplica(slot int) error
	// ReplaceReplica fails the replica in a slot (if present) and admits a
	// freshly caught-up replacement into the same slot, returning that slot.
	ReplaceReplica(slot int) (int, error)
}

var _ ElasticServer = (*Cluster)(nil)

// ChaosEvent is one scripted membership change at a virtual timestamp.
type ChaosEvent = fleet.Event

// ChaosAction names a membership event kind.
type ChaosAction = fleet.Action

// The chaos actions: kill/replace/leave take a slot operand, scale takes
// the target fleet size, join takes none.
const (
	ChaosKill    = fleet.Kill
	ChaosReplace = fleet.Replace
	ChaosJoin    = fleet.Join
	ChaosLeave   = fleet.Leave
	ChaosScale   = fleet.Scale
)

// ChaosSchedule is an ordered set of chaos events, applied by Drive at
// deterministic drain points (see DriveConfig.Chaos).
type ChaosSchedule = fleet.Schedule

// AppliedChaosEvent records where in a drive a chaos event landed.
type AppliedChaosEvent = driver.AppliedEvent

// ParseChaosScript parses the -chaos flag grammar: events separated by ';',
// each "@<duration> <action> [arg]" — e.g. "@2s kill 1; @4s replace 1;
// @6s scale 6". Durations are virtual time.
func ParseChaosScript(src string) (ChaosSchedule, error) { return fleet.ParseScript(src) }

// Response is the result of serving one request.
type Response = core.Response

// Stats is a Server statistics snapshot. On a Cluster the top-level fields
// are merged across the fleet and Replicas carries the per-replica view;
// an idle Cluster reports NaN for P50/P99 (quantiles of an empty window are
// undefined — check math.IsNaN).
type Stats = core.Stats

// System is a single LiveUpdate inference node: serving plus co-located LoRA
// training with performance isolation. See internal/core for details.
type System = core.System

// Cluster is a fleet of replica Systems sharing one base checkpoint, with
// pluggable request routing and periodic LoRA priority-merge sync. See
// internal/cluster for details.
type Cluster = cluster.Cluster

// Router picks the replica that serves each request.
type Router = cluster.Router

// RouterPolicy names a built-in routing policy for WithRouter.
type RouterPolicy = cluster.Policy

// The built-in routing policies.
const (
	// RoundRobinRouter cycles through replicas uniformly.
	RoundRobinRouter = cluster.RoundRobin
	// LeastLoadedRouter picks the replica with the smallest virtual-time
	// backlog.
	LeastLoadedRouter = cluster.LeastLoaded
	// HashRouter shards by sparse feature ids for embedding locality.
	HashRouter = cluster.Hash
)

// RouterPolicies lists the built-in routing policies.
func RouterPolicies() []RouterPolicy { return cluster.Policies() }

// SyncMode selects how periodic fleet syncs propagate.
type SyncMode = cluster.SyncMode

// The sync propagation modes.
const (
	// SyncModeAsync (the default) is the versioned, double-buffered
	// pipeline: each replica is snapshotted individually, the priority merge
	// runs on a background goroutine with the simulated AllGather cost
	// charged to the sync clock, and the merged state is published per
	// replica through epoch-versioned atomic pointer swaps. Serving never
	// blocks on a fleet-wide lock during a periodic sync.
	SyncModeAsync = cluster.SyncAsync
	// SyncModeBarrier is the legacy stop-the-world protocol: every periodic
	// sync drains and blocks the whole fleet behind a write lock until the
	// merged state is installed everywhere.
	SyncModeBarrier = cluster.SyncBarrier
)

// SyncModes lists the supported sync modes, default first.
func SyncModes() []SyncMode { return cluster.SyncModes() }

// SyncTopology names the collective topology pricing fleet syncs.
type SyncTopology = collective.Kind

// The sync collective topologies. The merged state is bit-identical under
// every topology (and with delta sync on or off); only the simulated cost —
// wire bytes and virtual seconds — changes.
const (
	// SyncTopologyFlat (the default) is the original recursive-doubling
	// AllGather: log-depth, but quadratic fleet-wide wire volume.
	SyncTopologyFlat = collective.TopologyFlat
	// SyncTopologyRing pipelines chunked partial merges around a ring:
	// bandwidth-optimal (linear wire volume) at n−1 hops of latency.
	SyncTopologyRing = collective.TopologyRing
	// SyncTopologyTree is a binomial reduce + broadcast: log-depth and
	// linear wire volume — the fleet-scale choice.
	SyncTopologyTree = collective.TopologyTree
)

// SyncTopologies lists the supported sync topologies, default first.
func SyncTopologies() []SyncTopology { return collective.Topologies() }

// Quantization selects the published inference weight format of the dense
// MLPs. Training always runs in float64; quantization snapshots the weights
// at publish time (system construction, full sync), so it changes served
// probabilities only — every virtual-time statistic is invariant to it. The
// kernels experiment gates each quantized mode's accuracy: |ΔAUC| vs the
// float64 baseline must stay under experiments.KernelAUCEpsilon.
type Quantization = dlrm.QuantMode

// The quantization modes.
const (
	// QuantizationNone (the default) serves float64 weights.
	QuantizationNone = dlrm.QuantNone
	// QuantizationInt8 serves int8 weights with one symmetric scale per
	// output row; dot products run in int32 with no per-element dequant.
	QuantizationInt8 = dlrm.QuantInt8
	// QuantizationF16 serves weights truncated to f16-style precision (10
	// explicit mantissa bits, float32 exponent range).
	QuantizationF16 = dlrm.QuantF16
)

// Quantizations lists the supported quantization modes, default first.
func Quantizations() []Quantization {
	return dlrm.QuantModes()
}

// ParseQuantization validates a quantization mode string ("" means none).
func ParseQuantization(s string) (Quantization, error) {
	return dlrm.ParseQuantMode(s)
}

// Profile describes a dataset/workload (paper Table II).
type Profile = trace.Profile

// Workload generates the synthetic drifting CTR stream.
type Workload = trace.Generator

// Sample is one labeled user-item interaction.
type Sample = trace.Sample

// StrategyKind selects an update strategy for comparisons.
type StrategyKind = update.Kind

// The strategies the paper evaluates (§V-A).
const (
	NoUpdate    = update.NoUpdate
	DeltaUpdate = update.DeltaUpdate
	QuickUpdate = update.QuickUpdate
	LiveUpdate  = update.LiveUpdate
)

// HardwareWorkload tags the two co-located processes on the machine model
// for per-workload statistics (cache hit ratios, DRAM traffic).
type HardwareWorkload = numasim.Workload

// The co-located workloads of the hardware model.
const (
	WorkloadInference = numasim.Inference
	WorkloadTraining  = numasim.Training
)

// Option configures New. Options compose left to right; later options win.
type Option interface {
	apply(*config) error
}

type optionFunc func(*config) error

func (f optionFunc) apply(c *config) error { return f(c) }

type config struct {
	profile   *Profile
	seed      uint64
	seedSet   bool
	replicas  int
	router    RouterPolicy
	syncEvery time.Duration
	syncMode  SyncMode
	topology  SyncTopology
	deltaSync bool
	compress  int
	chaos     ChaosSchedule
	legacy    *core.Options
	overrides []func(*core.Options)
	listener  net.Listener
	admission AdmissionConfig
	telemetry *obs.Telemetry
	faultPlan FaultPlan
}

// WithProfile selects the dataset/workload profile (required unless a legacy
// Options value is supplied).
func WithProfile(p Profile) Option {
	return optionFunc(func(c *config) error {
		c.profile = &p
		return nil
	})
}

// WithSeed sets the deterministic seed for model init, workload hashing, and
// training. The default is 42.
func WithSeed(seed uint64) Option {
	return optionFunc(func(c *config) error {
		c.seed = seed
		c.seedSet = true
		return nil
	})
}

// WithReplicas sets the fleet size. 1 (the default) builds a single System;
// n > 1 builds a Cluster of n replicas sharing one base checkpoint.
func WithReplicas(n int) Option {
	return optionFunc(func(c *config) error {
		if n < 1 {
			return fmt.Errorf("liveupdate: WithReplicas(%d): fleet size must be >= 1", n)
		}
		c.replicas = n
		return nil
	})
}

// WithRouter selects the request-routing policy for a fleet. The default is
// round-robin. It has no effect on a single-node Server.
func WithRouter(p RouterPolicy) Option {
	return optionFunc(func(c *config) error {
		if _, err := cluster.NewRouter(p); err != nil {
			return err
		}
		c.router = p
		return nil
	})
}

// WithSyncEvery sets the virtual-time interval between fleet-wide LoRA
// priority-merge syncs (default 30s of virtual time). Zero disables periodic
// syncs. It has no effect on a single-node Server.
func WithSyncEvery(d time.Duration) Option {
	return optionFunc(func(c *config) error {
		if d < 0 {
			return fmt.Errorf("liveupdate: WithSyncEvery(%v): interval must be non-negative", d)
		}
		c.syncEvery = d
		return nil
	})
}

// WithSyncMode selects how periodic fleet syncs propagate: SyncModeAsync
// (the default) never blocks serving behind a periodic sync, SyncModeBarrier
// reproduces the legacy stop-the-world behavior. It has no effect on a
// single-node Server. Virtual-time statistics (Served, Violations, sync
// counts, latency quantiles) are deterministic for any worker count in
// either mode; async mode trades bit-identical run-to-run adapter values for
// non-blocking propagation (the paper's bounded-staleness window).
func WithSyncMode(m SyncMode) Option {
	return optionFunc(func(c *config) error {
		mode, err := cluster.ParseSyncMode(string(m))
		if err != nil {
			return err
		}
		c.syncMode = mode
		return nil
	})
}

// WithSyncTopology selects the collective topology pricing fleet syncs:
// SyncTopologyFlat (the default recursive-doubling AllGather),
// SyncTopologyRing, or SyncTopologyTree. Topology changes only the sync
// bill — wire bytes and virtual seconds — never the merged state, so every
// virtual-time statistic other than the sync cost columns is unchanged. It
// has no effect on a single-node Server.
func WithSyncTopology(t SyncTopology) Option {
	return optionFunc(func(c *config) error {
		if _, err := collective.ParseTopology(t); err != nil {
			return fmt.Errorf("liveupdate: WithSyncTopology: %w", err)
		}
		c.topology = t
		return nil
	})
}

// WithDeltaSync enables delta sync billing: each sync ships only rows whose
// generation changed since the peer's last acknowledged sync, and skips
// shared factors the receivers already hold. Pure cost accounting — the
// merged state stays bit-identical to full sync; SyncDeltaSavedBytes in
// Stats reports the avoided wire volume. It has no effect on a single-node
// Server.
func WithDeltaSync(enabled bool) Option {
	return optionFunc(func(c *config) error {
		c.deltaSync = enabled
		return nil
	})
}

// WithCompression prices flate compression of sync payloads: level 0 (the
// default) disables it, 1 (fastest) … 9 (best ratio) trade modeled cpu
// seconds (SyncCompressSeconds) for wire bytes (SyncCompressSavedBytes). It
// has no effect on a single-node Server.
func WithCompression(level int) Option {
	return optionFunc(func(c *config) error {
		if level < 0 || level > 9 {
			return fmt.Errorf("liveupdate: WithCompression(%d): level out of range [0,9]", level)
		}
		c.compress = level
		return nil
	})
}

// WithBatchSize attaches a preferred serving batch size to the Server: Drive
// picks it up when its own DriveConfig carries no batch size, letting the
// load driver's lane workers coalesce up to n queued same-shard requests
// into one amortized ServeBatch/ServeShardBatch call (one forward scratch,
// one lock acquisition for the whole run, zero allocations on the scoring
// path). Virtual-time statistics are identical to unbatched serving; only
// wall-clock throughput changes. 0 or 1 means unbatched.
func WithBatchSize(n int) Option {
	return optionFunc(func(c *config) error {
		if n < 0 {
			return fmt.Errorf("liveupdate: WithBatchSize(%d): batch size must be non-negative", n)
		}
		c.overrides = append(c.overrides, func(o *core.Options) { o.BatchSize = n })
		return nil
	})
}

// WithQuantization selects the published inference weight format (see
// Quantization). The zero value serves float64.
func WithQuantization(q Quantization) Option {
	return optionFunc(func(c *config) error {
		if _, err := dlrm.ParseQuantMode(string(q)); err != nil {
			return fmt.Errorf("liveupdate: WithQuantization: %w", err)
		}
		c.overrides = append(c.overrides, func(o *core.Options) { o.Quantization = string(q) })
		return nil
	})
}

// WithChaos attaches a membership-event schedule to the fleet: Drive picks
// it up automatically when its own DriveConfig carries no schedule, so a
// server can be constructed "pre-loaded" with the churn it should survive.
// It requires WithReplicas(n) with n > 1 — a single node has no membership
// to change.
func WithChaos(schedule ChaosSchedule) Option {
	return optionFunc(func(c *config) error {
		if err := schedule.Validate(); err != nil {
			return fmt.Errorf("liveupdate: WithChaos: %w", err)
		}
		c.chaos = schedule
		return nil
	})
}

// WithTraining toggles the co-located LoRA trainer (off = the paper's
// "Only Infer" baseline).
func WithTraining(enabled bool) Option {
	return optionFunc(func(c *config) error {
		c.overrides = append(c.overrides, func(o *core.Options) { o.EnableTraining = enabled })
		return nil
	})
}

// WithIsolation toggles NUMA-aware CCD scheduling and embedding-vector reuse
// together (off = the paper's naive co-location, "w/o Opt").
func WithIsolation(enabled bool) Option {
	return optionFunc(func(c *config) error {
		c.overrides = append(c.overrides, func(o *core.Options) {
			o.EnableScheduling = enabled
			o.EnableReuse = enabled
		})
		return nil
	})
}

// WithSystemOptions applies an arbitrary edit to the underlying per-node
// core options after defaults are computed — the escape hatch for knobs
// without a dedicated Option (train cadence, SLA, machine model, ...).
func WithSystemOptions(edit func(*Options)) Option {
	return optionFunc(func(c *config) error {
		c.overrides = append(c.overrides, func(o *core.Options) {
			edit((*Options)(o))
		})
		return nil
	})
}

// WithListener exposes the constructed Server over a real TCP (or any
// net.Listener) wire front end: HTTP/1.1 + JSON for single requests, a
// length-prefixed binary fast path for batches, with connection limits, a
// bounded admission queue, and SLA-budget-aware load shedding (429 +
// Retry-After). New then returns a *Gateway — still a Server, with its
// Serve/Stats delegating in-process — whose Addr and Close manage the
// listener; type-assert to reach them:
//
//	srv, _ := liveupdate.New(liveupdate.WithProfile(p), liveupdate.WithListener(ln))
//	gw := srv.(*liveupdate.Gateway)
//	defer gw.Close()
//
// The gateway owns the listener and closes it on Close. The wire path is
// deliberately outside the virtual-time determinism contract: request
// arrival order over concurrent connections is wall-clock real, so
// worker-count-invariant statistics hold for in-process driving only.
func WithListener(ln net.Listener) Option {
	return optionFunc(func(c *config) error {
		if ln == nil {
			return fmt.Errorf("liveupdate: WithListener requires a non-nil listener")
		}
		c.listener = ln
		return nil
	})
}

// WithAdmission sets the wire front end's admission policy (connection
// limit, inflight bound, queue depth, SLA shedding budget). Only meaningful
// together with WithListener; zero fields take the netserve defaults.
func WithAdmission(cfg AdmissionConfig) Option {
	return optionFunc(func(c *config) error {
		c.admission = cfg
		return nil
	})
}

// WithTelemetry attaches the fleet telemetry layer to the Server: a named
// metrics registry that serving, cluster sync, fleet membership, and — under
// WithListener — wire admission register into, plus (when cfg.SampleEvery > 0)
// sampled per-request stage tracing (route, admission queue wait, forward,
// commit, sync-publish stall) into a preallocated lock-free span ring.
//
// Telemetry is strictly a side-band wall-clock observer: it never reads or
// mutates virtual-time state, so every virtual-time statistic stays
// bit-identical with telemetry on or off (a test enforces this). The traced
// hot path allocates nothing; sampling costs one atomic increment per stage.
//
// Reach the surface with ServerTelemetry (scrape programmatically, dump a
// Perfetto trace) or over the wire: a WithListener gateway exports
// GET /metrics (Prometheus text), GET /debug/vars (expvar-style JSON),
// GET /trace (Chrome trace-event JSON, loadable at ui.perfetto.dev), and —
// only when cfg.Pprof is set — net/http/pprof under /debug/pprof/. All
// observability endpoints bypass admission control: they answer even while
// /serve sheds 429s. Drive reports a per-stage latency breakdown
// (DriveReport.Stages) when the driven Server carries a tracer.
func WithTelemetry(cfg TelemetryConfig) Option {
	return optionFunc(func(c *config) error {
		c.telemetry = obs.New(cfg)
		return nil
	})
}

// TelemetryConfig configures WithTelemetry: SampleEvery traces 1 in N
// requests per stage (0 disables tracing; the metrics registry is always on),
// SpanRing sizes the span ring (default 4096), Pprof opts the gateway into
// /debug/pprof/. See internal/obs.Config for field semantics.
type TelemetryConfig = obs.Config

// Telemetry is a Server's observability surface: the metrics registry, the
// stage tracer, and the export writers (WriteMetrics, WriteVars, WriteTrace).
// A nil *Telemetry is valid everywhere and means "telemetry off".
type Telemetry = obs.Telemetry

// DriveStageStat is one pipeline stage's sampled wall-clock timing over a
// drive, carried in DriveReport.Stages when the driven Server has tracing
// enabled (WithTelemetry with SampleEvery > 0).
type DriveStageStat = driver.StageStat

// ServerTelemetry returns srv's telemetry surface, or nil when the Server
// carries none (constructed without WithTelemetry). Works on every topology:
// System, Cluster, and Gateway.
func ServerTelemetry(srv Server) *Telemetry {
	if p, ok := srv.(interface{ Telemetry() *obs.Telemetry }); ok {
		return p.Telemetry()
	}
	return nil
}

// FaultPlan is a named, seeded network-fault-injection schedule for the wire
// path: weighted clauses of latency, reset, blackhole, truncate, and corrupt
// faults, applied deterministically per connection from the plan seed. See
// ParseFaultPlan for the grammar and WithFaultInjection to arm one.
type FaultPlan = faultnet.Plan

// FaultClass names one injected fault kind (latency, reset, blackhole,
// truncate, corrupt).
type FaultClass = faultnet.Class

// FaultClasses lists every fault class in plan-grammar order.
func FaultClasses() []FaultClass { return faultnet.Classes() }

// ParseFaultPlan parses the fault-plan grammar — clauses separated by ';',
// each "class(key=value,...)":
//
//	latency(p=0.2,min=1ms,max=20ms); reset(p=0.05); corrupt(p=0.01,bits=3)
//
// Keys: p (per-read probability), min/max (latency bounds), stall (blackhole
// hang), bytes (truncate cap), bits (corrupt bit flips). Hostile or mistyped
// values fail loudly. An empty string parses to a disabled plan. Set
// Plan.Seed before arming it; the same seed replays the same per-connection
// fault sequence.
func ParseFaultPlan(s string) (FaultPlan, error) { return faultnet.ParsePlan(s) }

// WithFaultInjection arms deterministic network chaos on the wire front end:
// every connection the WithListener gateway accepts reads its inbound bytes
// through the plan's fault clauses, seeded per connection from the plan
// seed. Faults touch only inbound requests — a request can be delayed,
// reset, stalled, truncated, or corrupted on its way in, but an accepted
// request always completes and responds — so chaos moves requests around on
// the wall clock without ever changing virtual-time statistics. Requires
// WithListener; a disabled plan (no clauses) is a no-op.
func WithFaultInjection(plan FaultPlan) Option {
	return optionFunc(func(c *config) error {
		c.faultPlan = plan
		return nil
	})
}

// AdmissionConfig is the wire front end's admission policy: MaxConns bounds
// accepted connections, MaxInflight bounds concurrently served wire
// requests, QueueDepth bounds the FIFO wait queue, and SLABudget (when
// positive) sheds arrivals whose predicted queueing delay already exceeds
// the budget. See internal/netserve.Config for field semantics and defaults.
type AdmissionConfig = netserve.Config

// Gateway is a Server exposed over a listener; see WithListener.
type Gateway = netserve.Gateway

// EndpointStats is one wire endpoint's admission ledger, carried in
// Stats.Wire when a Gateway fronts the server.
type EndpointStats = core.EndpointStats

// DialConfig configures Dial: Conns client lanes (parallel connections that
// the load driver treats as shards), the per-attempt Timeout, and the 429
// retry budget (Retries attempts, each back-off capped at MaxRetryWait).
type DialConfig = netclient.Config

// RemoteServer is a Server backed by a remote Gateway; see Dial.
type RemoteServer = netclient.Client

// Dial connects to a Gateway in another process and returns a RemoteServer:
// a Server (with the sharded batch surfaces Drive uses for coalescing)
// whose requests travel over the wire — singles as JSON, coalesced batches
// on the binary fast path. 429 shed responses are absorbed transparently
// with Retry-After back-off; RemoteServer.Shed429 counts them. Stats()
// fetches the server-side snapshot, wire admission ledger included.
//
//	remote, err := liveupdate.Dial("localhost:7070", liveupdate.DialConfig{Conns: 8})
//	...
//	report, err := liveupdate.Drive(remote, workload, cfg)
func Dial(addr string, cfg DialConfig) (*RemoteServer, error) {
	return netclient.Dial(addr, cfg)
}

// Both wire endpoints satisfy the serving abstraction.
var (
	_ Server = (*Gateway)(nil)
	_ Server = (*RemoteServer)(nil)
)

// Options is the legacy flat configuration struct.
//
// Deprecated: build Servers with New and functional options (WithProfile,
// WithSeed, WithReplicas, ...). Options itself implements Option, so
// existing New(DefaultOptions(p, seed)) call sites keep working; the value
// is taken verbatim as the per-node configuration.
type Options core.Options

func (o Options) apply(c *config) error {
	co := core.Options(o)
	c.legacy = &co
	return nil
}

// DefaultOptions returns the full-system single-node configuration
// (training, NUMA scheduling, and embedding-vector reuse all enabled) for a
// profile.
//
// Deprecated: prefer functional options; kept for the legacy New(Options)
// form and as the base WithSystemOptions edits.
func DefaultOptions(p Profile, seed uint64) Options {
	return Options(core.DefaultOptions(p, seed))
}

// New builds a Server. With WithReplicas(1) (the default) the result is a
// single-node *System; with more replicas it is a *Cluster. A legacy Options
// value may be passed instead of (not alongside) WithProfile/WithSeed.
func New(opts ...Option) (Server, error) {
	c := config{seed: 42, replicas: 1, router: RoundRobinRouter, syncEvery: 30 * time.Second, syncMode: SyncModeAsync}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o.apply(&c); err != nil {
			return nil, err
		}
	}
	var base core.Options
	switch {
	case c.legacy != nil && c.profile != nil:
		return nil, fmt.Errorf("liveupdate: legacy Options and WithProfile are mutually exclusive")
	case c.legacy != nil && c.seedSet:
		return nil, fmt.Errorf("liveupdate: legacy Options and WithSeed are mutually exclusive (set Options.Seed instead)")
	case c.legacy != nil:
		base = *c.legacy
	case c.profile != nil:
		base = core.DefaultOptions(*c.profile, c.seed)
	default:
		return nil, fmt.Errorf("liveupdate: New requires WithProfile (or a legacy Options value)")
	}
	for _, edit := range c.overrides {
		edit(&base)
	}
	if c.telemetry != nil {
		base.Telemetry = c.telemetry
	}
	var srv Server
	if c.replicas == 1 {
		if len(c.chaos) > 0 {
			return nil, fmt.Errorf("liveupdate: WithChaos requires a fleet (WithReplicas > 1)")
		}
		s, err := core.New(base)
		if err != nil {
			return nil, err
		}
		srv = s
	} else {
		router, err := cluster.NewRouter(c.router)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			Base:        base,
			Replicas:    c.replicas,
			Router:      router,
			SyncEvery:   c.syncEvery,
			Mode:        c.syncMode,
			Topology:    c.topology,
			DeltaSync:   c.deltaSync,
			Compression: c.compress,
			Chaos:       c.chaos,
		})
		if err != nil {
			return nil, err
		}
		srv = cl
	}
	if c.listener != nil {
		if c.admission.Telemetry == nil {
			c.admission.Telemetry = c.telemetry
		}
		ln := c.listener
		if c.faultPlan.Enabled() {
			ln = faultnet.WrapListener(ln, c.faultPlan)
		}
		return netserve.New(srv, ln, c.admission)
	}
	if c.faultPlan.Enabled() {
		return nil, fmt.Errorf("liveupdate: WithFaultInjection requires WithListener — faults live on the wire")
	}
	return srv, nil
}

// DriveConfig configures Drive, the concurrent load driver.
type DriveConfig struct {
	// Requests is the number of samples to pump through the Server
	// (required, > 0).
	Requests int

	// Concurrency is the number of client goroutines. Zero or negative
	// defaults to GOMAXPROCS. Effective parallelism is additionally bounded
	// by the Server's shard count (a Cluster's replicas; 1 for a System).
	Concurrency int

	// QueueDepth bounds each worker's request queue (closed-loop
	// back-pressure on the trace sequencer). Zero defaults to 128.
	QueueDepth int

	// Seed seeds the per-worker RNG streams behind the per-worker latency
	// reservoirs, making the full Report reproducible at a fixed seed and
	// concurrency. The workload carries its own seed.
	Seed uint64

	// ProgressEvery, with OnProgress set, invokes OnProgress after every
	// ProgressEvery served requests. Calls are serialized; served is the
	// drive-wide count at the time of the callback.
	ProgressEvery int
	OnProgress    func(served uint64)

	// Chaos is a membership-event schedule applied during the drive; the
	// Server must be elastic (a Cluster). Events fire at deterministic
	// drain points — every ChaosEvery routed requests the driver lets all
	// in-flight requests complete, reads the fleet's virtual clock, and
	// applies every event whose timestamp has been reached — so a fixed
	// (seed, schedule) pair reproduces the same event placement for any
	// Concurrency. Empty falls back to the schedule attached with
	// WithChaos, if any.
	Chaos ChaosSchedule

	// ChaosEvery is the drain-point cadence in requests (default 64).
	ChaosEvery int

	// BatchSize lets each driver lane coalesce up to this many queued
	// same-shard requests into one amortized serve call (the zero-allocation
	// batched fast path). Coalescing preserves per-shard order, so every
	// virtual-time statistic matches unbatched driving. 0 falls back to the
	// batch size attached with WithBatchSize, if any; 1 forces unbatched.
	BatchSize int
}

// DriveReport is Drive's result: wall-clock throughput (QPS, Elapsed),
// virtual-time stats (VirtualTime, VirtualQPS, the final Stats snapshot in
// Final), and a per-worker breakdown. Virtual-time fields are deterministic
// regardless of Concurrency; wall-clock fields are measured.
type DriveReport = driver.Report

// DriveWorkerStats is one worker's share of a drive.
type DriveWorkerStats = driver.WorkerStats

// Drive pumps cfg.Requests samples from workload through srv using
// cfg.Concurrency client goroutines and returns a throughput report.
//
// A single sequencer draws the trace in order and routes each request to
// its shard through the Server's own (deterministic) routing; per-shard FIFO
// delivery then guarantees that every virtual-time statistic — Served,
// Violations, per-replica clocks, sync counts — is identical no matter the
// worker count, while wall-clock throughput scales with the replica fleet.
// (Exception: the least-loaded router routes by live replica clocks, which
// depend on wall-clock interleaving; use the round-robin or hash router
// when bit-identical runs matter.)
func Drive(srv Server, workload *Workload, cfg DriveConfig) (DriveReport, error) {
	return DriveContext(context.Background(), srv, workload, cfg)
}

// DriveContext is Drive with cancellation: when ctx is cancelled mid-drive,
// the partial report is returned with Cancelled set and a nil error.
func DriveContext(ctx context.Context, srv Server, workload *Workload, cfg DriveConfig) (DriveReport, error) {
	if workload == nil {
		return DriveReport{}, fmt.Errorf("liveupdate: Drive requires a workload")
	}
	chaos := cfg.Chaos
	if len(chaos) == 0 {
		// Fall back to the schedule attached at construction (WithChaos).
		if p, ok := srv.(interface{ ChaosSchedule() fleet.Schedule }); ok {
			chaos = p.ChaosSchedule()
		}
	}
	batch := cfg.BatchSize
	if batch == 0 {
		// Fall back to the batch size attached at construction (WithBatchSize).
		if p, ok := srv.(interface{ DefaultBatchSize() int }); ok {
			batch = p.DefaultBatchSize()
		}
	}
	return driver.Drive(ctx, srv, workload.Next, driver.Config{
		Requests:      cfg.Requests,
		Workers:       cfg.Concurrency,
		QueueDepth:    cfg.QueueDepth,
		Seed:          cfg.Seed,
		ProgressEvery: cfg.ProgressEvery,
		OnProgress:    cfg.OnProgress,
		Chaos:         chaos,
		ChaosEvery:    cfg.ChaosEvery,
		BatchSize:     batch,
	})
}

// Profiles returns the dataset registry (paper Table II).
func Profiles() map[string]Profile { return trace.Profiles() }

// ProfileByName resolves a dataset name (avazu, criteo, bd-tb, avazu-tb,
// criteo-tb).
func ProfileByName(name string) (Profile, error) { return trace.ProfileByName(name) }

// NewWorkload builds a deterministic drifting CTR stream for a profile.
func NewWorkload(p Profile, seed uint64) *Workload { return trace.MustNewGenerator(p, seed) }

// Comparison configures a strategy-comparison run (the Table III setup):
// a continuously fresh training cluster, an inference replica updated by the
// chosen strategy, and test-then-train AUC evaluation on a drifting stream.
type Comparison = update.HarnessConfig

// ComparisonResult summarizes one comparison run.
type ComparisonResult = update.Result

// NewComparison returns the paper's evaluation schedule (5-minute windows,
// 10-minute updates, hourly full sync) for a profile and strategy.
func NewComparison(p Profile, k StrategyKind, seed uint64) Comparison {
	return update.DefaultHarnessConfig(p, k, seed)
}

// RunComparison executes a comparison: pretrainWindows of warmup, then
// windows of test-then-train evaluation.
func RunComparison(cfg Comparison, pretrainWindows, windows int) (ComparisonResult, error) {
	h, err := update.NewHarness(cfg)
	if err != nil {
		return ComparisonResult{}, err
	}
	h.Pretrain(pretrainWindows)
	return h.Run(windows), nil
}

// CostModel exposes the paper-scale update-cost arithmetic (Figs 8/14).
type CostModel = update.CostModel

// NewCostModel returns the paper's cost constants for a profile (100 GbE,
// 5% QuickUpdate sampling).
func NewCostModel(p Profile) CostModel { return update.DefaultCostModel(p) }

// ExperimentIDs lists the reproducible tables and figures in presentation
// order (fig3a … fig19, table2, table3, syncpipe).
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentConfig configures RunExperimentWith.
type ExperimentConfig struct {
	// Seed is the deterministic seed.
	Seed uint64
	// Quick reduces sample counts (tests, smoke runs).
	Quick bool
	// SyncMode restricts fleet-serving experiments (syncpipe, elastic) to
	// one sync propagation mode; the zero value runs their default mode set.
	SyncMode SyncMode
	// ChaosScript overrides the elastic experiment's built-in
	// kill/replace/scale schedule (ParseChaosScript grammar).
	ChaosScript string
	// BatchSize sets the load driver's lane-coalescing batch size for the
	// fleet-serving experiments (syncpipe, elastic); 0 or 1 drives unbatched.
	BatchSize int
	// Topology restricts the syncscale experiment to one collective
	// topology ("flat", "ring", "tree"); the zero value sweeps all three.
	Topology SyncTopology
	// DeltaSync enables delta sync billing in the fleet-serving experiments.
	DeltaSync bool
	// Compression sets the fleet-serving experiments' flate level (0–9).
	Compression int
	// Quantization restricts the kernels experiment's AUC gate to one
	// quantized mode; the zero value gates every quantized mode.
	Quantization Quantization
}

// RunExperiment regenerates one paper table/figure and returns its printable
// report. Set quick for reduced sample counts (tests, smoke runs).
func RunExperiment(id string, seed uint64, quick bool) (string, error) {
	return RunExperimentWith(id, ExperimentConfig{Seed: seed, Quick: quick})
}

// RunExperimentWith is RunExperiment with the full configuration surface,
// including the sync propagation mode for fleet-serving experiments.
func RunExperimentWith(id string, cfg ExperimentConfig) (string, error) {
	runner, ok := experiments.Registry()[id]
	if !ok {
		return "", fmt.Errorf("liveupdate: unknown experiment %q (valid: %v)", id, experiments.IDs())
	}
	rep, err := runner(experiments.Options{
		Seed:     cfg.Seed,
		Quick:    cfg.Quick,
		SyncMode: string(cfg.SyncMode),
		Chaos:    cfg.ChaosScript,
		Batch:    cfg.BatchSize,
		Topology: string(cfg.Topology),
		Delta:    cfg.DeltaSync,
		Compress: cfg.Compression,
		Quant:    string(cfg.Quantization),
	})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
