// Package liveupdate is a from-scratch Go reproduction of "Near-Zero-Overhead
// Freshness for Recommendation Systems via Inference-Side Model Updates"
// (HPCA 2026). It provides:
//
//   - the LiveUpdate system itself: a DLRM serving node with a co-located
//     LoRA trainer, dynamic rank adaptation, usage-based pruning, and
//     NUMA-aware performance isolation (System, Options);
//   - the baselines the paper compares against: NoUpdate, DeltaUpdate, and
//     QuickUpdate, behind a single comparison harness (Comparison);
//   - the evaluation suite: every table and figure of the paper's §V can be
//     regenerated with RunExperiment.
//
// The heavy machinery lives in internal/ packages (tensor math, DLRM,
// embedding tables, LoRA adapters, the discrete-event cluster simulation,
// and the NUMA hardware model); this package re-exports the surface a
// downstream user needs.
//
// Quickstart:
//
//	profile, _ := liveupdate.ProfileByName("criteo")
//	sys, err := liveupdate.New(liveupdate.DefaultOptions(profile, 42))
//	if err != nil { ... }
//	gen := liveupdate.NewWorkload(profile, 42)
//	for i := 0; i < 10000; i++ {
//	    prob, latency := sys.Serve(gen.Next())
//	    _ = prob; _ = latency
//	}
//	fmt.Println("P99:", sys.Node.P99(), "LoRA overhead:", sys.MemoryOverhead())
package liveupdate

import (
	"fmt"

	"liveupdate/internal/core"
	"liveupdate/internal/experiments"
	"liveupdate/internal/numasim"
	"liveupdate/internal/trace"
	"liveupdate/internal/update"
)

// Version identifies this reproduction release.
const Version = "1.0.0"

// System is a LiveUpdate inference node: serving plus co-located LoRA
// training with performance isolation. See internal/core for details.
type System = core.System

// Options configures a System.
type Options = core.Options

// Profile describes a dataset/workload (paper Table II).
type Profile = trace.Profile

// Workload generates the synthetic drifting CTR stream.
type Workload = trace.Generator

// Sample is one labeled user-item interaction.
type Sample = trace.Sample

// StrategyKind selects an update strategy for comparisons.
type StrategyKind = update.Kind

// The strategies the paper evaluates (§V-A).
const (
	NoUpdate    = update.NoUpdate
	DeltaUpdate = update.DeltaUpdate
	QuickUpdate = update.QuickUpdate
	LiveUpdate  = update.LiveUpdate
)

// HardwareWorkload tags the two co-located processes on the machine model
// for per-workload statistics (cache hit ratios, DRAM traffic).
type HardwareWorkload = numasim.Workload

// The co-located workloads of the hardware model.
const (
	WorkloadInference = numasim.Inference
	WorkloadTraining  = numasim.Training
)

// New builds a LiveUpdate system.
func New(opts Options) (*System, error) { return core.New(opts) }

// DefaultOptions returns the full-system configuration (training, NUMA
// scheduling, and embedding-vector reuse all enabled) for a profile.
func DefaultOptions(p Profile, seed uint64) Options { return core.DefaultOptions(p, seed) }

// Profiles returns the dataset registry (paper Table II).
func Profiles() map[string]Profile { return trace.Profiles() }

// ProfileByName resolves a dataset name (avazu, criteo, bd-tb, avazu-tb,
// criteo-tb).
func ProfileByName(name string) (Profile, error) { return trace.ProfileByName(name) }

// NewWorkload builds a deterministic drifting CTR stream for a profile.
func NewWorkload(p Profile, seed uint64) *Workload { return trace.MustNewGenerator(p, seed) }

// Comparison configures a strategy-comparison run (the Table III setup):
// a continuously fresh training cluster, an inference replica updated by the
// chosen strategy, and test-then-train AUC evaluation on a drifting stream.
type Comparison = update.HarnessConfig

// ComparisonResult summarizes one comparison run.
type ComparisonResult = update.Result

// NewComparison returns the paper's evaluation schedule (5-minute windows,
// 10-minute updates, hourly full sync) for a profile and strategy.
func NewComparison(p Profile, k StrategyKind, seed uint64) Comparison {
	return update.DefaultHarnessConfig(p, k, seed)
}

// RunComparison executes a comparison: pretrainWindows of warmup, then
// windows of test-then-train evaluation.
func RunComparison(cfg Comparison, pretrainWindows, windows int) (ComparisonResult, error) {
	h, err := update.NewHarness(cfg)
	if err != nil {
		return ComparisonResult{}, err
	}
	h.Pretrain(pretrainWindows)
	return h.Run(windows), nil
}

// CostModel exposes the paper-scale update-cost arithmetic (Figs 8/14).
type CostModel = update.CostModel

// NewCostModel returns the paper's cost constants for a profile (100 GbE,
// 5% QuickUpdate sampling).
func NewCostModel(p Profile) CostModel { return update.DefaultCostModel(p) }

// ExperimentIDs lists the reproducible tables and figures in presentation
// order (fig3a … fig19, table2, table3).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure and returns its printable
// report. Set quick for reduced sample counts (tests, smoke runs).
func RunExperiment(id string, seed uint64, quick bool) (string, error) {
	runner, ok := experiments.Registry()[id]
	if !ok {
		return "", fmt.Errorf("liveupdate: unknown experiment %q (valid: %v)", id, experiments.IDs())
	}
	rep, err := runner(experiments.Options{Seed: seed, Quick: quick})
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}
