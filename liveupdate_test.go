package liveupdate

import (
	"strings"
	"testing"
)

func smallProfile(t *testing.T) Profile {
	t.Helper()
	p, err := ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func TestPublicQuickstartFlow(t *testing.T) {
	p := smallProfile(t)
	sys, err := New(DefaultOptions(p, 42))
	if err != nil {
		t.Fatal(err)
	}
	gen := NewWorkload(p, 42)
	for i := 0; i < 100; i++ {
		prob, latency := sys.Serve(gen.Next())
		if prob <= 0 || prob >= 1 || latency <= 0 {
			t.Fatalf("bad serve output: %v %v", prob, latency)
		}
	}
	if sys.Node.P99() <= 0 {
		t.Fatal("P99 must be measurable")
	}
	if sys.MemoryOverhead() < 0 {
		t.Fatal("overhead must be non-negative")
	}
}

func TestPublicComparison(t *testing.T) {
	p := smallProfile(t)
	cfg := NewComparison(p, DeltaUpdate, 7)
	cfg.SamplesPerWindow = 150
	res, err := RunComparison(cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaUpdate || len(res.AUCSeries) != 4 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestPublicCostModel(t *testing.T) {
	p, err := ProfileByName("bd-tb")
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCostModel(p)
	if cm.HourlyCost(LiveUpdate, 300) >= cm.HourlyCost(DeltaUpdate, 300) {
		t.Fatal("LiveUpdate must be cheaper than DeltaUpdate at 5-min updates")
	}
}

func TestRunExperimentKnownAndUnknown(t *testing.T) {
	out, err := RunExperiment("table2", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Criteo") {
		t.Fatalf("table2 output missing datasets:\n%s", out)
	}
	if _, err := RunExperiment("nope", 1, true); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestExperimentIDsStable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(ids))
	}
	for _, want := range []string{"fig14", "table3", "fig16", "fig19"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing experiment %q", want)
		}
	}
}
