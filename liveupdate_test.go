package liveupdate

import (
	"strings"
	"testing"
	"time"
)

func smallProfile(t *testing.T) Profile {
	t.Helper()
	p, err := ProfileByName("criteo")
	if err != nil {
		t.Fatal(err)
	}
	p.NumTables = 3
	p.TableSize = 300
	p.NumDense = 4
	p.MultiHot = []int{1, 1, 1}
	return p
}

func TestPublicQuickstartFlow(t *testing.T) {
	p := smallProfile(t)
	srv, err := New(WithProfile(p), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.(*System); !ok {
		t.Fatalf("single-replica New must build a *System, got %T", srv)
	}
	gen := NewWorkload(p, 42)
	for i := 0; i < 100; i++ {
		resp, err := srv.Serve(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if resp.Prob <= 0 || resp.Prob >= 1 || resp.Latency <= 0 {
			t.Fatalf("bad serve output: %+v", resp)
		}
		if resp.Replica != 0 {
			t.Fatalf("single node must report replica 0, got %d", resp.Replica)
		}
	}
	st := srv.Stats()
	if st.P99 <= 0 {
		t.Fatal("P99 must be measurable")
	}
	if st.Served != 100 {
		t.Fatalf("Served = %d, want 100", st.Served)
	}
	if st.MemoryOverhead < 0 {
		t.Fatal("overhead must be non-negative")
	}
}

func TestLegacyOptionsShim(t *testing.T) {
	p := smallProfile(t)
	opts := DefaultOptions(p, 7)
	opts.EnableTraining = false
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	gen := NewWorkload(p, 7)
	for i := 0; i < 50; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.TrainSteps != 0 {
		t.Fatalf("training disabled via legacy Options, but %d train steps ran", st.TrainSteps)
	}
	if _, err := New(opts, WithProfile(p)); err == nil {
		t.Fatal("legacy Options + WithProfile must be rejected")
	}
	if _, err := New(opts, WithSeed(9)); err == nil {
		t.Fatal("legacy Options + WithSeed must be rejected, not silently ignored")
	}
}

func TestNewOptionValidation(t *testing.T) {
	p := smallProfile(t)
	if _, err := New(); err == nil {
		t.Fatal("New without a profile must error")
	}
	if _, err := New(WithProfile(p), WithReplicas(0)); err == nil {
		t.Fatal("WithReplicas(0) must error")
	}
	if _, err := New(WithProfile(p), WithRouter(RouterPolicy("bogus"))); err == nil {
		t.Fatal("unknown router policy must error")
	}
	if _, err := New(WithProfile(p), WithSyncEvery(-time.Second)); err == nil {
		t.Fatal("negative sync interval must error")
	}
}

func TestServeRejectsMismatchedSample(t *testing.T) {
	p := smallProfile(t)
	srv, err := New(WithProfile(p))
	if err != nil {
		t.Fatal(err)
	}
	bad := Sample{Dense: make([]float64, p.NumDense), Sparse: [][]int32{{1}}}
	if _, err := srv.Serve(bad); err == nil {
		t.Fatal("sample with wrong sparse arity must be rejected")
	}
}

func TestWithSystemOptionsOverride(t *testing.T) {
	p := smallProfile(t)
	srv, err := New(WithProfile(p), WithSystemOptions(func(o *Options) {
		o.Node.SLA = 0.042
	}))
	if err != nil {
		t.Fatal(err)
	}
	if sla := srv.Stats().SLA; sla != 0.042 {
		t.Fatalf("SLA override not applied: %v", sla)
	}
}

func TestRouterPoliciesExposed(t *testing.T) {
	ps := RouterPolicies()
	if len(ps) != 3 {
		t.Fatalf("want 3 router policies, got %v", ps)
	}
	want := map[RouterPolicy]bool{RoundRobinRouter: true, LeastLoadedRouter: true, HashRouter: true}
	for _, p := range ps {
		if !want[p] {
			t.Fatalf("unexpected policy %q", p)
		}
	}
}

func TestPublicComparison(t *testing.T) {
	p := smallProfile(t)
	cfg := NewComparison(p, DeltaUpdate, 7)
	cfg.SamplesPerWindow = 150
	res, err := RunComparison(cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != DeltaUpdate || len(res.AUCSeries) != 4 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestPublicCostModel(t *testing.T) {
	p, err := ProfileByName("bd-tb")
	if err != nil {
		t.Fatal(err)
	}
	cm := NewCostModel(p)
	if cm.HourlyCost(LiveUpdate, 300) >= cm.HourlyCost(DeltaUpdate, 300) {
		t.Fatal("LiveUpdate must be cheaper than DeltaUpdate at 5-min updates")
	}
}

func TestRunExperimentKnownAndUnknown(t *testing.T) {
	out, err := RunExperiment("table2", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Criteo") {
		t.Fatalf("table2 output missing datasets:\n%s", out)
	}
}

func TestRunExperimentUnknownIDError(t *testing.T) {
	_, err := RunExperiment("nope", 1, true)
	if err == nil {
		t.Fatal("unknown experiment must error")
	}
	// The error must name the bad id and list the valid ones, so a CLI user
	// can self-correct.
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("error must quote the unknown id: %v", err)
	}
	for _, id := range []string{"table2", "fig19"} {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("error must list valid id %q: %v", id, err)
		}
	}
}

func TestExperimentIDsStable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 24 {
		t.Fatalf("expected 24 experiments, got %d", len(ids))
	}
	for _, want := range []string{"fig14", "table3", "fig16", "fig19", "elastic", "wire", "faultwire", "syncscale", "kernels"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing experiment %q", want)
		}
	}
}

func TestWithChaosDrivePublicAPI(t *testing.T) {
	p := smallProfile(t)
	schedule, err := ParseChaosScript("@500ms kill 1; @900ms replace 1; @1300ms scale 4")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(
		WithProfile(p),
		WithSeed(42),
		WithReplicas(3),
		WithRouter(HashRouter),
		WithSyncEvery(300*time.Millisecond),
		WithChaos(schedule),
	)
	if err != nil {
		t.Fatal(err)
	}
	// The ElasticServer surface must be reachable from the public type.
	if _, ok := srv.(ElasticServer); !ok {
		t.Fatalf("%T must implement ElasticServer", srv)
	}
	// Drive picks the attached schedule up without DriveConfig.Chaos.
	rep, err := Drive(srv, NewWorkload(p, 7), DriveConfig{Requests: 3000, Concurrency: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Served != 3000 {
		t.Fatalf("served %d of 3000 under churn", rep.Served)
	}
	if len(rep.Chaos)+rep.ChaosSkipped != len(schedule) {
		t.Fatalf("chaos accounting: applied %d + skipped %d != %d scheduled",
			len(rep.Chaos), rep.ChaosSkipped, len(schedule))
	}
	if len(rep.Chaos) == 0 {
		t.Fatal("no chaos event fired; fixture timestamps too late")
	}
	st := srv.Stats()
	if st.Fails == 0 || st.Members == 0 {
		t.Fatalf("fleet counters missing after churn: %+v", st)
	}
}

func TestWithChaosValidation(t *testing.T) {
	p := smallProfile(t)
	if _, err := New(WithProfile(p), WithChaos(ChaosSchedule{{At: time.Second, Action: ChaosKill, Arg: 0}})); err == nil {
		t.Fatal("WithChaos on a single node must be rejected")
	}
	if _, err := New(WithProfile(p), WithReplicas(2),
		WithChaos(ChaosSchedule{{At: -time.Second, Action: ChaosKill, Arg: 0}})); err == nil {
		t.Fatal("invalid schedule must be rejected")
	}
	if _, err := ParseChaosScript("@1s detonate 2"); err == nil {
		t.Fatal("unknown chaos action must be rejected")
	}
}

func TestElasticServerScaleAndFail(t *testing.T) {
	p := smallProfile(t)
	srv, err := New(WithProfile(p), WithReplicas(2), WithSyncEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	es := srv.(ElasticServer)
	if err := es.Scale(4); err != nil {
		t.Fatal(err)
	}
	if err := es.FailReplica(0); err != nil {
		t.Fatal(err)
	}
	if slot, err := es.ReplaceReplica(0); err != nil || slot != 0 {
		t.Fatalf("replace: slot=%d err=%v", slot, err)
	}
	gen := NewWorkload(p, 9)
	for i := 0; i < 50; i++ {
		if _, err := srv.Serve(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Members != 4 || st.Served != 50 {
		t.Fatalf("post-churn stats: members=%d served=%d", st.Members, st.Served)
	}
}

// TestWithBatchSize: the construction-attached batch hint surfaces through
// DefaultBatchSize on both server shapes, Drive picks it up when DriveConfig
// carries none, and virtual-time stats match an unbatched drive.
func TestWithBatchSize(t *testing.T) {
	p := smallProfile(t)
	if _, err := New(WithProfile(p), WithBatchSize(-1)); err == nil {
		t.Fatal("negative batch size must be rejected")
	}
	run := func(batched bool) Stats {
		opts := []Option{
			WithProfile(p), WithSeed(42), WithReplicas(3),
			WithRouter(HashRouter), WithSyncEvery(2 * time.Second),
		}
		if batched {
			opts = append(opts, WithBatchSize(16))
		}
		srv, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want := map[bool]int{true: 16, false: 0}[batched]; srv.(*Cluster).DefaultBatchSize() != want {
			t.Fatalf("DefaultBatchSize = %d, want %d", srv.(*Cluster).DefaultBatchSize(), want)
		}
		rep, err := Drive(srv, NewWorkload(p, 42), DriveConfig{Requests: 2000, Concurrency: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if batched && rep.BatchSize != 16 {
			t.Fatalf("Drive did not pick up WithBatchSize: effective %d", rep.BatchSize)
		}
		if !batched && rep.BatchSize != 1 {
			t.Fatalf("unbatched drive reports batch size %d", rep.BatchSize)
		}
		return rep.Final
	}
	a, b := run(false), run(true)
	if a.Served != b.Served || a.VirtualTime != b.VirtualTime ||
		a.Violations != b.Violations || a.TrainSteps != b.TrainSteps || a.Syncs != b.Syncs {
		t.Fatalf("batched vs unbatched virtual stats differ:\n %+v\n %+v", a, b)
	}
}
