package liveupdate

import (
	"testing"
	"time"
)

// TestWithSyncTopologyPublicAPI drives the same fleet under every topology
// through the public surface: the serving schedule is topology-invariant,
// only the sync bill changes, and the chosen topology plus its wire
// accounting surface through Stats.
func TestWithSyncTopologyPublicAPI(t *testing.T) {
	p := smallProfile(t)
	if _, err := New(WithProfile(p), WithSyncTopology("mesh")); err == nil {
		t.Fatal("unknown topology must be rejected at construction")
	}
	if _, err := New(WithProfile(p), WithCompression(10)); err == nil {
		t.Fatal("compression level 10 must be rejected at construction")
	}
	if got := SyncTopologies(); len(got) != 3 {
		t.Fatalf("SyncTopologies() = %v", got)
	}

	run := func(topo SyncTopology) Stats {
		srv, err := New(
			WithProfile(p), WithSeed(42), WithReplicas(4),
			WithRouter(HashRouter), WithSyncEvery(50*time.Millisecond),
			// Barrier mode keeps wall-clock out of the delta payloads: in
			// async mode the background merge reads state at scheduling-
			// dependent moments, so SyncWireBytes would drift under load
			// (see deltasync_test.go for the same pin).
			WithSyncMode(SyncModeBarrier),
			WithSyncTopology(topo), WithDeltaSync(true), WithCompression(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		gen := NewWorkload(p, 42)
		for i := 0; i < 400; i++ {
			if _, err := srv.Serve(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		st := srv.Stats()
		if st.SyncTopology != string(topo) {
			t.Fatalf("Stats().SyncTopology = %q, want %q", st.SyncTopology, topo)
		}
		if st.Syncs == 0 || st.SyncWireBytes == 0 {
			t.Fatalf("%s: sync accounting missing: syncs=%d wire=%d", topo, st.Syncs, st.SyncWireBytes)
		}
		return st
	}
	flat := run(SyncTopologyFlat)
	ring := run(SyncTopologyRing)
	tree := run(SyncTopologyTree)

	// The serving schedule is topology-invariant; the bill is not. (State
	// bit-identity for identical sync inputs is pinned at the collective and
	// cluster layers, where the inputs can be held fixed.)
	for _, st := range []Stats{ring, tree} {
		if st.Served != flat.Served || st.TrainSteps != flat.TrainSteps || st.Syncs != flat.Syncs {
			t.Fatalf("topology changed the serving schedule:\n flat %+v\n got %+v", flat, st)
		}
	}
	// Hierarchical collectives must undercut flat's wire bill for a 4-member
	// fleet shipping the same payloads.
	if tree.SyncWireBytes >= flat.SyncWireBytes || ring.SyncWireBytes >= flat.SyncWireBytes {
		t.Fatalf("wire bills: flat=%d ring=%d tree=%d — hierarchical must undercut flat",
			flat.SyncWireBytes, ring.SyncWireBytes, tree.SyncWireBytes)
	}
	// The compression knob billed cpu time on every variant.
	if tree.SyncCompressSeconds <= 0 {
		t.Fatalf("compression seconds missing: %+v", tree)
	}
}
