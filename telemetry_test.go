package liveupdate

// Telemetry determinism gate: every virtual-time statistic must be
// bit-identical with telemetry on or off — for any worker count, in both
// sync modes, under chaos. The telemetry layer is a side-band wall-clock
// observer; if switching it on moves a single virtual-time bit, it has
// leaked into the simulation.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"liveupdate/internal/obs"
)

// telemetryKey projects the virtual-time statistics the determinism
// contract covers (mirroring the driver's worker-count-invariance tests):
// fleet-level counters and quantiles, the applied chaos event placements,
// the membership counters, and the full per-replica snapshots minus the
// adapter-content fields (hot-row census, memory overhead), which async
// mode publishes at wall-clock-dependent instants.
type telemetryKey struct {
	served, violations, trainSteps uint64
	syncs                          int
	virtualTime, p50, p99          float64
	members, joins, leaves, fails  int
	events                         []AppliedChaosEvent
	perReplica                     []Stats
}

func telemetryKeyOf(rep DriveReport) telemetryKey {
	st := rep.Final
	k := telemetryKey{
		served:      st.Served,
		violations:  st.Violations,
		trainSteps:  st.TrainSteps,
		syncs:       st.Syncs,
		virtualTime: st.VirtualTime,
		p50:         st.P50,
		p99:         st.P99,
		members:     st.Members,
		joins:       st.Joins,
		leaves:      st.Leaves,
		fails:       st.Fails,
		events:      rep.Chaos,
	}
	for _, rs := range st.Replicas {
		rs.Replicas = nil
		rs.LoRAHotRows = 0
		rs.MemoryOverhead = 0
		k.perReplica = append(k.perReplica, rs)
	}
	return k
}

func TestTelemetryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run determinism sweep")
	}
	p := smallProfile(t)
	schedule := ChaosSchedule{
		{At: 400 * time.Millisecond, Action: ChaosKill, Arg: 1},
		{At: 800 * time.Millisecond, Action: ChaosReplace, Arg: 1},
		{At: 1200 * time.Millisecond, Action: ChaosScale, Arg: 4},
	}
	const requests = 1500

	run := func(mode SyncMode, workers int, telemetry Option) (DriveReport, Server) {
		t.Helper()
		opts := []Option{
			WithProfile(p),
			WithSeed(42),
			WithReplicas(3),
			WithRouter(HashRouter),
			WithSyncEvery(2 * time.Second),
			WithSyncMode(mode),
			WithSystemOptions(func(o *Options) { o.TrainInterval = 4 }),
		}
		if telemetry != nil {
			opts = append(opts, telemetry)
		}
		srv, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		gen := NewWorkload(p, 7)
		rep, err := Drive(srv, gen, DriveConfig{
			Requests: requests, Concurrency: workers, Seed: 1, Chaos: schedule,
		})
		if err != nil {
			t.Fatalf("%s workers=%d: %v", mode, workers, err)
		}
		if rep.Served != requests {
			t.Fatalf("%s workers=%d: served %d of %d", mode, workers, rep.Served, requests)
		}
		if len(rep.Chaos) != len(schedule) || rep.ChaosSkipped != 0 {
			t.Fatalf("%s workers=%d: applied %d chaos events (skipped %d), want all %d",
				mode, workers, len(rep.Chaos), rep.ChaosSkipped, len(schedule))
		}
		return rep, srv
	}

	for _, mode := range SyncModes() {
		baseline, off := run(mode, 1, nil)
		if ServerTelemetry(off) != nil {
			t.Fatalf("%s: server built without WithTelemetry must carry no telemetry", mode)
		}
		want := telemetryKeyOf(baseline)
		if want.syncs == 0 {
			t.Fatalf("%s: no periodic syncs fired (virtual time %.3fs) — horizon too short",
				mode, want.virtualTime)
		}
		for _, workers := range []int{1, 3, 8} {
			rep, srv := run(mode, workers, WithTelemetry(TelemetryConfig{SampleEvery: 1}))
			got := telemetryKeyOf(rep)
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
				t.Fatalf("%s workers=%d: virtual-time stats diverge with telemetry on:\n  off: %+v\n  on:  %+v",
					mode, workers, want, got)
			}

			// The side-band surface must actually have observed the run.
			tel := ServerTelemetry(srv)
			if tel == nil || tel.Tracer() == nil {
				t.Fatalf("%s workers=%d: WithTelemetry(SampleEvery:1) must expose a tracer", mode, workers)
			}
			totals := tel.Tracer().StageTotals()
			for _, stage := range []obs.Stage{obs.StageRoute, obs.StageForward, obs.StageCommit, obs.StageSyncPublish} {
				if totals[stage].Count == 0 {
					t.Fatalf("%s workers=%d: stage %q recorded no spans", mode, workers, stage)
				}
			}
			if len(rep.Stages) == 0 {
				t.Fatalf("%s workers=%d: DriveReport.Stages empty with tracing on", mode, workers)
			}
			seen := map[string]bool{}
			for _, s := range rep.Stages {
				if s.Count == 0 || s.TotalNs < 0 || s.MeanNs < 0 {
					t.Fatalf("%s workers=%d: implausible stage stat %+v", mode, workers, s)
				}
				seen[s.Stage] = true
			}
			for _, name := range []string{"route", "forward", "commit", "sync_publish"} {
				if !seen[name] {
					t.Fatalf("%s workers=%d: stage %q missing from report breakdown %+v",
						mode, workers, name, rep.Stages)
				}
			}
			var counted float64
			for _, m := range tel.Registry().Snapshot() {
				if m.Name == "liveupdate_serve_requests_total" {
					counted = m.Value
				}
			}
			if counted != float64(requests) {
				t.Fatalf("%s workers=%d: liveupdate_serve_requests_total = %v, want %d",
					mode, workers, counted, requests)
			}
			var sb strings.Builder
			if err := tel.WriteMetrics(&sb); err != nil {
				t.Fatalf("%s workers=%d: WriteMetrics: %v", mode, workers, err)
			}
			for _, want := range []string{
				"# TYPE liveupdate_serve_requests_total counter",
				"liveupdate_sync_epochs_total",
				"liveupdate_fleet_members 4",
			} {
				if !strings.Contains(sb.String(), want) {
					t.Fatalf("%s workers=%d: /metrics text missing %q:\n%s", mode, workers, want, sb.String())
				}
			}
		}
	}
}
